#include "columnar/resident_fragment.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "exec/exec_context.h"
#include "storage/byte_stream.h"

namespace payg {

namespace {

// Serialization layout of the ".full" chain:
//   meta:  u8 type, u8 has_index, u32 bits, u64 row_count, u64 dict_size
//   dict:  dict_size values (i64 / double raw, strings length-prefixed)
//   data:  u64 word_count, words
//   index: u8 unique, u64 postings, postings × u32,
//          [if !unique] u64 dirsize, dirsize × u64
std::string ChainName(const std::string& name) { return name + ".full"; }

}  // namespace

// Reader over a loaded fragment; holds a pin so the column cannot be
// unloaded while a query is running.
class ResidentReader : public FragmentReader {
 public:
  ResidentReader(FullyResidentFragment* frag, ExecContext* ctx,
                 PinnedResource pin)
      : frag_(frag), ctx_(ctx), pin_(std::move(pin)) {}

  Result<ValueId> GetVid(RowPos rpos) override {
    if (rpos >= frag_->row_count_) return Status::OutOfRange("row position");
    if (sparse()) return frag_->sparse_.Get(rpos);
    return static_cast<ValueId>(frag_->data_.Get(rpos));
  }

  Status MGetVids(RowPos from, RowPos to, std::vector<ValueId>* out) override {
    if (from > to || to > frag_->row_count_) {
      return Status::OutOfRange("row range");
    }
    size_t old = out->size();
    out->resize(old + (to - from));
    if (sparse()) {
      frag_->sparse_.MGet(from, to, out->data() + old);
    } else {
      frag_->data_.MGet(from, to, out->data() + old);
    }
    return Status::OK();
  }

  Status SearchVidRange(RowPos from, RowPos to, ValueId lo, ValueId hi,
                        std::vector<RowPos>* out) override {
    if (from > to || to > frag_->row_count_) {
      return Status::OutOfRange("row range");
    }
    if (sparse()) {
      frag_->sparse_.SearchRange(from, to, lo, hi, from, out);
    } else {
      PackedSearchRange(frag_->data_.words(), frag_->data_.bits(), from, to,
                        lo, hi, from, out);
    }
    CountRowsScanned(ctx_, to - from);
    return Status::OK();
  }

  Status SearchVidSet(RowPos from, RowPos to,
                      const std::vector<ValueId>& sorted_vids,
                      std::vector<RowPos>* out) override {
    if (from > to || to > frag_->row_count_) {
      return Status::OutOfRange("row range");
    }
    if (sparse()) {
      frag_->sparse_.SearchIn(from, to, sorted_vids, from, out);
    } else {
      PackedSearchIn(frag_->data_.words(), frag_->data_.bits(), from, to,
                     sorted_vids, from, out);
    }
    CountRowsScanned(ctx_, to - from);
    return Status::OK();
  }

  Status FilterRows(const std::vector<RowPos>& rows, ValueId lo, ValueId hi,
                    std::vector<RowPos>* out) override {
    for (RowPos r : rows) {
      if (r >= frag_->row_count_) return Status::OutOfRange("row position");
      uint64_t v = sparse() ? frag_->sparse_.Get(r) : frag_->data_.Get(r);
      if (v - lo <= static_cast<uint64_t>(hi) - lo) out->push_back(r);
      CountRowsScanned(ctx_, 1);
    }
    return Status::OK();
  }

  Status FindRows(ValueId vid, std::vector<RowPos>* out) override {
    if (vid >= frag_->dict_size_) return Status::OutOfRange("value id");
    if (frag_->has_index_) {
      CountIndexLookup(ctx_);
      auto span = frag_->index_.Lookup(vid);
      out->insert(out->end(), span.begin(), span.end());
      return Status::OK();
    }
    CountVectorScan(ctx_);
    if (sparse()) {
      frag_->sparse_.SearchEq(0, frag_->row_count_, vid, 0, out);
    } else {
      PackedSearchEq(frag_->data_.words(), frag_->data_.bits(), 0,
                     frag_->row_count_, vid, 0, out);
    }
    CountRowsScanned(ctx_, frag_->row_count_);
    return Status::OK();
  }

  Result<Value> GetValueForVid(ValueId vid) override {
    if (vid >= frag_->dict_size_) return Status::OutOfRange("value id");
    return frag_->dict_.GetValue(vid);
  }

  Result<ValueId> FindValueId(const Value& value) override {
    auto v = frag_->dict_.FindValueId(value);
    return v.has_value() ? *v : kInvalidValueId;
  }

  Result<ValueId> LowerBoundVid(const Value& value) override {
    return frag_->dict_.LowerBound(value);
  }

  Result<ValueId> UpperBoundVid(const Value& value) override {
    return frag_->dict_.UpperBound(value);
  }

 private:
  bool sparse() const {
    return frag_->codec_ == FullyResidentFragment::Codec::kSparse;
  }

  FullyResidentFragment* frag_;
  ExecContext* ctx_;
  PinnedResource pin_;
};

Result<std::unique_ptr<FullyResidentFragment>> FullyResidentFragment::Build(
    StorageManager* storage, ResourceManager* rm, const std::string& name,
    ValueType type, const std::vector<Value>& sorted_dict_values,
    const std::vector<ValueId>& vids, bool with_index) {
  PAYG_ASSIGN_OR_RETURN(
      auto file, storage->CreateChain(ChainName(name),
                                      storage->options().page_size));

  uint32_t bits = BitsNeeded(
      sorted_dict_values.empty() ? 0 : sorted_dict_values.size() - 1);
  // Pick the data-vector codec: sparse encoding when one vid dominates.
  const Codec codec = SparseVector::ShouldUse(vids, /*threshold=*/0.6)
                          ? Codec::kSparse
                          : Codec::kPacked;
  ChainByteWriter w(file.get());
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU8(with_index ? 1 : 0);
  w.PutU8(static_cast<uint8_t>(codec));
  w.PutU32(bits);
  w.PutU64(vids.size());
  w.PutU64(sorted_dict_values.size());
  for (const Value& v : sorted_dict_values) {
    switch (type) {
      case ValueType::kInt64:
        w.PutI64(v.AsInt64());
        break;
      case ValueType::kDouble:
        w.PutDouble(v.AsDouble());
        break;
      case ValueType::kString:
        w.PutString(v.AsString());
        break;
    }
  }
  if (codec == Codec::kSparse) {
    SparseVector sv = SparseVector::Encode(vids);
    w.PutU32(sv.dominant());
    w.PutU32(sv.bits());
    w.PutU64(sv.exception_bitmap().size());
    w.PutBytes(sv.exception_bitmap().data(),
               sv.exception_bitmap().size() * sizeof(uint64_t));
    w.PutU64(sv.exception_count());
    uint64_t ewords = CeilDiv(sv.exception_count() * sv.bits(), 64) + 2;
    PAYG_ASSERT(ewords <= sv.exceptions().word_count());
    w.PutU64(ewords);
    w.PutBytes(sv.exceptions().words(), ewords * sizeof(uint64_t));
  } else {
    PackedVector packed(bits);
    for (ValueId v : vids) packed.Append(v);
    // Write exactly the needed words (the in-memory buffer over-allocates
    // for growth); +2 covers the kernels' overread padding.
    uint64_t nwords = CeilDiv(vids.size() * bits, 64) + 2;
    PAYG_ASSERT(nwords <= packed.word_count());
    w.PutU64(nwords);
    w.PutBytes(packed.words(), nwords * sizeof(uint64_t));
  }
  if (with_index) {
    InvertedIndex idx = InvertedIndex::Build(vids, sorted_dict_values.size());
    w.PutU8(idx.unique() ? 1 : 0);
    w.PutU64(idx.postinglist().size());
    w.PutBytes(idx.postinglist().data(),
               idx.postinglist().size() * sizeof(RowPos));
    if (!idx.unique()) {
      w.PutU64(idx.directory().size());
      w.PutBytes(idx.directory().data(),
                 idx.directory().size() * sizeof(uint64_t));
    }
  }
  PAYG_RETURN_IF_ERROR(w.Finish());

  auto frag = std::unique_ptr<FullyResidentFragment>(
      new FullyResidentFragment(storage, rm, name));
  frag->type_ = type;
  frag->has_index_ = with_index;
  frag->codec_ = codec;
  frag->bits_ = bits;
  frag->row_count_ = vids.size();
  frag->dict_size_ = sorted_dict_values.size();
  return frag;
}

Result<std::unique_ptr<FullyResidentFragment>> FullyResidentFragment::Open(
    StorageManager* storage, ResourceManager* rm, const std::string& name) {
  PAYG_ASSIGN_OR_RETURN(
      auto file,
      storage->OpenChain(ChainName(name), storage->options().page_size));
  ChainByteReader r(file.get());
  auto frag = std::unique_ptr<FullyResidentFragment>(
      new FullyResidentFragment(storage, rm, name));
  PAYG_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
  PAYG_ASSIGN_OR_RETURN(uint8_t has_index, r.GetU8());
  PAYG_ASSIGN_OR_RETURN(uint8_t codec, r.GetU8());
  PAYG_ASSIGN_OR_RETURN(frag->bits_, r.GetU32());
  PAYG_ASSIGN_OR_RETURN(frag->row_count_, r.GetU64());
  PAYG_ASSIGN_OR_RETURN(frag->dict_size_, r.GetU64());
  frag->type_ = static_cast<ValueType>(type);
  frag->has_index_ = has_index != 0;
  frag->codec_ = static_cast<Codec>(codec);
  return frag;
}

FullyResidentFragment::~FullyResidentFragment() {
  MutexLock lock(mu_);
  if (loaded_ && resource_id_ != kInvalidResourceId) {
    rm_->Unregister(resource_id_);
  }
}

Result<ResourceId> FullyResidentFragment::EnsureLoaded() {
  MutexLock lock(mu_);
  if (loaded_) return resource_id_;

  Stopwatch timer;
  PAYG_ASSIGN_OR_RETURN(
      auto file,
      storage_->OpenChain(ChainName(name_), storage_->options().page_size));
  ChainByteReader r(file.get());
  PAYG_ASSIGN_OR_RETURN(uint8_t type_u8, r.GetU8());
  PAYG_ASSIGN_OR_RETURN(uint8_t has_index, r.GetU8());
  PAYG_ASSIGN_OR_RETURN(uint8_t codec_u8, r.GetU8());
  uint32_t bits;
  PAYG_ASSIGN_OR_RETURN(bits, r.GetU32());
  uint64_t rows, dict_size;
  PAYG_ASSIGN_OR_RETURN(rows, r.GetU64());
  PAYG_ASSIGN_OR_RETURN(dict_size, r.GetU64());
  ValueType type = static_cast<ValueType>(type_u8);
  PAYG_ASSERT(type == type_ && rows == row_count_ && dict_size == dict_size_ &&
              bits == bits_ && (has_index != 0) == has_index_ &&
              static_cast<Codec>(codec_u8) == codec_);

  std::vector<Value> values;
  values.reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    switch (type) {
      case ValueType::kInt64: {
        PAYG_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
        values.emplace_back(v);
        break;
      }
      case ValueType::kDouble: {
        PAYG_ASSIGN_OR_RETURN(double v, r.GetDouble());
        values.emplace_back(v);
        break;
      }
      case ValueType::kString: {
        PAYG_ASSIGN_OR_RETURN(std::string v, r.GetString());
        values.emplace_back(std::move(v));
        break;
      }
    }
  }
  dict_ = Dictionary::FromSorted(type, std::move(values));

  if (codec_ == Codec::kSparse) {
    PAYG_ASSIGN_OR_RETURN(uint32_t dominant, r.GetU32());
    PAYG_ASSIGN_OR_RETURN(uint32_t ebits, r.GetU32());
    uint64_t bitmap_words;
    PAYG_ASSIGN_OR_RETURN(bitmap_words, r.GetU64());
    std::vector<uint64_t> bitmap(bitmap_words);
    PAYG_RETURN_IF_ERROR(
        r.GetBytes(bitmap.data(), bitmap_words * sizeof(uint64_t)));
    uint64_t exception_count, ewords;
    PAYG_ASSIGN_OR_RETURN(exception_count, r.GetU64());
    PAYG_ASSIGN_OR_RETURN(ewords, r.GetU64());
    std::vector<uint64_t> ex_words(ewords);
    PAYG_RETURN_IF_ERROR(
        r.GetBytes(ex_words.data(), ewords * sizeof(uint64_t)));
    sparse_ = SparseVector::FromParts(
        row_count_, dominant, ebits, std::move(bitmap),
        PackedVector::FromWords(ebits, exception_count,
                                std::move(ex_words)));
  } else {
    uint64_t word_count;
    PAYG_ASSIGN_OR_RETURN(word_count, r.GetU64());
    std::vector<uint64_t> words(word_count);
    PAYG_RETURN_IF_ERROR(
        r.GetBytes(words.data(), word_count * sizeof(uint64_t)));
    data_ = PackedVector::FromWords(bits_, row_count_, std::move(words));
  }

  if (has_index_) {
    PAYG_ASSIGN_OR_RETURN(uint8_t unique, r.GetU8());
    uint64_t postings;
    PAYG_ASSIGN_OR_RETURN(postings, r.GetU64());
    std::vector<RowPos> postinglist(postings);
    PAYG_RETURN_IF_ERROR(
        r.GetBytes(postinglist.data(), postings * sizeof(RowPos)));
    std::vector<uint64_t> directory;
    if (unique == 0) {
      uint64_t dirsize;
      PAYG_ASSIGN_OR_RETURN(dirsize, r.GetU64());
      directory.resize(dirsize);
      PAYG_RETURN_IF_ERROR(
          r.GetBytes(directory.data(), dirsize * sizeof(uint64_t)));
    }
    index_ = InvertedIndex::FromParts(dict_size_, unique != 0,
                                      std::move(postinglist),
                                      std::move(directory));
  }

  resident_bytes_ = dict_.MemoryBytes() +
                    (codec_ == Codec::kSparse ? sparse_.MemoryBytes()
                                              : data_.MemoryBytes()) +
                    (has_index_ ? index_.MemoryBytes() : 0);
  last_load_nanos_ = timer.ElapsedNanos();
  ++load_count_;
  loaded_ = true;
  resource_id_ = rm_->Register(
      name_, resident_bytes_, Disposition::kMidTerm, PoolId::kGeneral,
      [this] {
        MutexLock lk(mu_);
        UnloadLocked();
      });
  return resource_id_;
}

void FullyResidentFragment::UnloadLocked() {
  dict_ = Dictionary(type_);
  data_ = PackedVector(bits_);
  sparse_ = SparseVector();
  index_ = InvertedIndex();
  loaded_ = false;
  resident_bytes_ = 0;
  resource_id_ = kInvalidResourceId;
}

void FullyResidentFragment::Unload() {
  MutexLock lock(mu_);
  if (!loaded_) return;
  rm_->Unregister(resource_id_);
  UnloadLocked();
}

uint64_t FullyResidentFragment::ResidentBytes() const {
  MutexLock lock(mu_);
  return loaded_ ? resident_bytes_ : 0;
}

Result<std::unique_ptr<FragmentReader>> FullyResidentFragment::NewReader(
    ExecContext* ctx) {
  if (ctx != nullptr) {
    PAYG_RETURN_IF_ERROR(ctx->CheckDeadline());
  }
  PAYG_ASSIGN_OR_RETURN(ResourceId id, EnsureLoaded());
  PinnedResource pin = PinnedResource::TryPin(rm_, id);
  if (!pin.valid()) {
    // Evicted between load and pin (possible under heavy pressure): retry
    // once; a second failure indicates the budget cannot hold this column.
    PAYG_ASSIGN_OR_RETURN(id, EnsureLoaded());
    pin = PinnedResource::TryPin(rm_, id);
    if (!pin.valid()) {
      return Status::ResourceExhausted("column " + name_ +
                                       " cannot stay resident under budget");
    }
  }
  CountPagePinned(ctx);
  return std::unique_ptr<FragmentReader>(
      new ResidentReader(this, ctx, std::move(pin)));
}

}  // namespace payg
