#ifndef PAYG_COLUMNAR_INVERTED_INDEX_H_
#define PAYG_COLUMNAR_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "encoding/types.h"

namespace payg {

// Fully resident inverted index of a dictionary-encoded data vector (§3.3):
// the postinglist is the data vector's row positions reordered by vid; the
// directory holds, per vid, the offset of its first posting. For unique
// columns the directory is an identity vector and is not stored.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  // Builds from the (unpacked) vid per row. `dict_size` is the number of
  // distinct vids. Detects uniqueness and drops the directory when every vid
  // occurs exactly once.
  static InvertedIndex Build(const std::vector<ValueId>& vids,
                             uint64_t dict_size);

  // Adopts persisted parts (deserialization path). `directory` must be
  // empty iff unique.
  static InvertedIndex FromParts(uint64_t dict_size, bool unique,
                                 std::vector<RowPos> postinglist,
                                 std::vector<uint64_t> directory);

  // All row positions whose value identifier is `vid`, ordered ascending.
  std::span<const RowPos> Lookup(ValueId vid) const {
    PAYG_ASSERT(vid < dict_size_);
    if (unique_) {
      return {&postinglist_[vid], 1};
    }
    uint64_t begin = directory_[vid];
    uint64_t end = directory_[vid + 1];
    return {postinglist_.data() + begin, end - begin};
  }

  uint64_t dict_size() const { return dict_size_; }
  bool unique() const { return unique_; }
  const std::vector<RowPos>& postinglist() const { return postinglist_; }
  const std::vector<uint64_t>& directory() const { return directory_; }

  uint64_t MemoryBytes() const {
    return postinglist_.capacity() * sizeof(RowPos) +
           directory_.capacity() * sizeof(uint64_t);
  }

 private:
  uint64_t dict_size_ = 0;
  bool unique_ = false;
  std::vector<RowPos> postinglist_;
  std::vector<uint64_t> directory_;  // size dict_size+1 when !unique_
};

}  // namespace payg

#endif  // PAYG_COLUMNAR_INVERTED_INDEX_H_
