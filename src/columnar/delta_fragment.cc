#include "columnar/delta_fragment.h"

namespace payg {

RowPos DeltaFragment::Append(const Value& value) {
  PAYG_ASSERT_MSG(value.type() == type_, "value type mismatch on insert");
  std::string key = value.EncodeKey();
  auto [it, inserted] =
      lookup_.try_emplace(std::move(key), static_cast<ValueId>(dict_values_.size()));
  if (inserted) {
    dict_values_.push_back(value);
    if (indexed_) postings_.emplace_back();
  }
  RowPos row = static_cast<RowPos>(vids_.size());
  vids_.push_back(it->second);
  if (indexed_) postings_[it->second].push_back(row);
  return row;
}

void DeltaFragment::FindRows(const Value& value,
                             std::vector<RowPos>* out) const {
  auto it = lookup_.find(value.EncodeKey());
  if (it == lookup_.end()) return;
  ValueId vid = it->second;
  if (indexed_) {
    out->insert(out->end(), postings_[vid].begin(), postings_[vid].end());
    return;
  }
  for (RowPos r = 0; r < vids_.size(); ++r) {
    if (vids_[r] == vid) out->push_back(r);
  }
}

void DeltaFragment::FindRowsInRange(const Value& lo, const Value& hi,
                                    std::vector<RowPos>* out) const {
  std::vector<bool> qualifies(dict_values_.size(), false);
  bool any = false;
  for (ValueId v = 0; v < dict_values_.size(); ++v) {
    const Value& val = dict_values_[v];
    if (val.Compare(lo) >= 0 && val.Compare(hi) <= 0) {
      qualifies[v] = true;
      any = true;
    }
  }
  if (!any) return;
  for (RowPos r = 0; r < vids_.size(); ++r) {
    if (qualifies[vids_[r]]) out->push_back(r);
  }
}

void DeltaFragment::FindRowsMatching(
    const std::function<bool(const Value&)>& pred,
    std::vector<RowPos>* out) const {
  std::vector<bool> qualifies(dict_values_.size(), false);
  bool any = false;
  for (ValueId v = 0; v < dict_values_.size(); ++v) {
    if (pred(dict_values_[v])) {
      qualifies[v] = true;
      any = true;
    }
  }
  if (!any) return;
  for (RowPos r = 0; r < vids_.size(); ++r) {
    if (qualifies[vids_[r]]) out->push_back(r);
  }
}

uint64_t DeltaFragment::MemoryBytes() const {
  uint64_t bytes = vids_.capacity() * sizeof(ValueId) +
                   dict_values_.capacity() * sizeof(Value);
  for (const Value& v : dict_values_) bytes += v.MemoryBytes();
  // Rough estimate for the hash map nodes.
  bytes += lookup_.size() * (sizeof(void*) * 4 + 16);
  for (const auto& plist : postings_) {
    bytes += plist.capacity() * sizeof(RowPos);
  }
  bytes += postings_.capacity() * sizeof(std::vector<RowPos>);
  return bytes;
}

void DeltaFragment::Clear() {
  // Release capacity too: after a delta merge the fragment should hold no
  // memory (the merge moved everything into the main fragment).
  std::vector<ValueId>().swap(vids_);
  std::vector<Value>().swap(dict_values_);
  std::unordered_map<std::string, ValueId>().swap(lookup_);
  std::vector<std::vector<RowPos>>().swap(postings_);
}

}  // namespace payg
