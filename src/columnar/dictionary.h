#ifndef PAYG_COLUMNAR_DICTIONARY_H_
#define PAYG_COLUMNAR_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "columnar/value.h"
#include "common/macros.h"
#include "encoding/types.h"

namespace payg {

// Order-preserving in-memory main dictionary (§2): values are sorted and
// value identifiers are assigned in the same order, so vid comparison is
// value comparison. This is the dictionary of a fully loadable (default)
// column, and the staging form the paged dictionary builder serializes from.
class Dictionary {
 public:
  Dictionary() : type_(ValueType::kInt64) {}
  explicit Dictionary(ValueType type) : type_(type) {}

  // Builds from values that must already be sorted ascending and unique.
  static Dictionary FromSorted(ValueType type, std::vector<Value> sorted);

  ValueType type() const { return type_; }
  uint64_t size() const { return values_.size(); }

  // The value encoded by `vid`.
  const Value& GetValue(ValueId vid) const {
    PAYG_ASSERT(vid < values_.size());
    return values_[vid];
  }

  // The vid encoding `value`, if present.
  std::optional<ValueId> FindValueId(const Value& value) const;

  // Index of the first dictionary value >= `value` (== size() when all are
  // smaller). Range predicates on the data vector are translated to vid
  // ranges through this.
  ValueId LowerBound(const Value& value) const;

  // Index of the first dictionary value > `value`.
  ValueId UpperBound(const Value& value) const;

  // Approximate heap footprint for buffer-manager accounting.
  uint64_t MemoryBytes() const;

  const std::vector<Value>& values() const { return values_; }

 private:
  ValueType type_;
  std::vector<Value> values_;
};

}  // namespace payg

#endif  // PAYG_COLUMNAR_DICTIONARY_H_
