#ifndef PAYG_COLUMNAR_VALUE_H_
#define PAYG_COLUMNAR_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/macros.h"

namespace payg {

// Logical column types. DECIMAL is carried as a scaled int64 (the scale
// lives in the column schema); CHAR and VARCHAR are both kString.
enum class ValueType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

std::string_view ValueTypeName(ValueType t);

// A typed scalar value. Comparison is only defined between values of the
// same type (column type mismatches are programming errors, enforced by
// assertion, matching the paper's setting where queries are typed by the
// schema).
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(std::string_view v) : v_(std::string(v)) {}

  ValueType type() const { return static_cast<ValueType>(v_.index()); }

  int64_t AsInt64() const {
    PAYG_ASSERT(type() == ValueType::kInt64);
    return std::get<int64_t>(v_);
  }
  double AsDouble() const {
    PAYG_ASSERT(type() == ValueType::kDouble);
    return std::get<double>(v_);
  }
  const std::string& AsString() const {
    PAYG_ASSERT(type() == ValueType::kString);
    return std::get<std::string>(v_);
  }

  // Three-way comparison; requires identical types.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const {
    return type() == other.type() && Compare(other) == 0;
  }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // A type-tagged byte encoding usable as a hash-map key (delta dictionary).
  std::string EncodeKey() const;

  // Human-readable rendering for examples and debugging.
  std::string ToString() const;

  // Approximate heap footprint (strings only).
  uint64_t MemoryBytes() const {
    return type() == ValueType::kString ? AsString().capacity() : 0;
  }

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace payg

#endif  // PAYG_COLUMNAR_VALUE_H_
