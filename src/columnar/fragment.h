#ifndef PAYG_COLUMNAR_FRAGMENT_H_
#define PAYG_COLUMNAR_FRAGMENT_H_

#include <memory>
#include <optional>
#include <vector>

#include "columnar/value.h"
#include "common/result.h"
#include "common/status.h"
#include "encoding/types.h"

namespace payg {

class ExecContext;

// Per-query stateful reader over a main fragment. Readers own the paging
// state the paper attaches to iterators: pinned page handles, the
// dictionary handle cache, and inverted-index cursors. Destroying the reader
// releases every pin (iterator "goes out of scope", §3.2.3). The in-memory
// implementation is a thin pass-through.
//
// Readers are not thread-safe; create one per query.
class FragmentReader {
 public:
  virtual ~FragmentReader() = default;

  // --- data vector ---------------------------------------------------------
  // Decodes the value identifier at one row position.
  virtual Result<ValueId> GetVid(RowPos rpos) = 0;
  // Decodes all vids in [from, to) (appended to *out).
  virtual Status MGetVids(RowPos from, RowPos to,
                          std::vector<ValueId>* out) = 0;
  // Scans rows [from, to) for vids in [lo, hi]; appends matches to *out.
  virtual Status SearchVidRange(RowPos from, RowPos to, ValueId lo, ValueId hi,
                                std::vector<RowPos>* out) = 0;
  // Scans rows [from, to) for vids in `sorted_vids` (ascending).
  virtual Status SearchVidSet(RowPos from, RowPos to,
                              const std::vector<ValueId>& sorted_vids,
                              std::vector<RowPos>* out) = 0;
  // search(row list, vid range): of the candidate rows (ascending), keeps
  // those whose vid is in [lo, hi]. This is the paper's search variety over
  // a set of row positions — the building block for conjunctive predicates.
  virtual Status FilterRows(const std::vector<RowPos>& rows, ValueId lo,
                            ValueId hi, std::vector<RowPos>* out) = 0;

  // --- value lookup (index if present, else full data-vector scan) ----------
  virtual Status FindRows(ValueId vid, std::vector<RowPos>* out) = 0;

  // --- dictionary ----------------------------------------------------------
  virtual Result<Value> GetValueForVid(ValueId vid) = 0;
  // kInvalidValueId when absent.
  virtual Result<ValueId> FindValueId(const Value& value) = 0;
  // First vid whose value is >= / > `value` (vid space is value-ordered).
  virtual Result<ValueId> LowerBoundVid(const Value& value) = 0;
  virtual Result<ValueId> UpperBoundVid(const Value& value) = 0;
};

// A read-optimized main fragment (§2): encoded data vector + order
// preserving dictionary + optional inverted index. Two implementations:
// FullyResidentFragment (default columns — loaded entirely on first access)
// and PagedFragment (page loadable columns — loaded piecewise).
class MainFragment {
 public:
  virtual ~MainFragment() = default;

  virtual uint64_t row_count() const = 0;
  virtual uint64_t dict_size() const = 0;
  virtual ValueType type() const = 0;
  virtual bool has_index() const = 0;
  virtual bool is_paged() const = 0;

  // Display name of the data vector's storage codec (S22). Fully resident
  // fragments keep the in-memory packed/sparse encoding and report
  // "resident"; paged fragments report the persisted codec ("plain",
  // "for", "rle").
  virtual const char* codec_name() const { return "resident"; }

  // Creates a per-query reader. For a fully resident fragment this triggers
  // the full column load on first access; for a paged fragment it is cheap
  // and pages load lazily as the reader touches them. When `ctx` is given,
  // the reader attributes its page pins, reads, and scanned rows to that
  // query and honours its deadline.
  virtual Result<std::unique_ptr<FragmentReader>> NewReader(
      ExecContext* ctx) = 0;
  Result<std::unique_ptr<FragmentReader>> NewReader() {
    return NewReader(nullptr);
  }

  // Drops all resident memory (column unload). Safe to call while no
  // readers are open.
  virtual void Unload() = 0;

  // Bytes currently resident for this fragment as tracked by the resource
  // manager (0 when fully unloaded).
  virtual uint64_t ResidentBytes() const = 0;
};

}  // namespace payg

#endif  // PAYG_COLUMNAR_FRAGMENT_H_
