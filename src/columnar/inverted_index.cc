#include "columnar/inverted_index.h"

namespace payg {

InvertedIndex InvertedIndex::FromParts(uint64_t dict_size, bool unique,
                                       std::vector<RowPos> postinglist,
                                       std::vector<uint64_t> directory) {
  PAYG_ASSERT(unique == directory.empty());
  PAYG_ASSERT(unique || directory.size() == dict_size + 1);
  InvertedIndex idx;
  idx.dict_size_ = dict_size;
  idx.unique_ = unique;
  idx.postinglist_ = std::move(postinglist);
  idx.directory_ = std::move(directory);
  return idx;
}

InvertedIndex InvertedIndex::Build(const std::vector<ValueId>& vids,
                                   uint64_t dict_size) {
  InvertedIndex idx;
  idx.dict_size_ = dict_size;

  // Counting pass: occurrences per vid.
  std::vector<uint64_t> counts(dict_size + 1, 0);
  for (ValueId v : vids) {
    PAYG_ASSERT(v < dict_size);
    ++counts[v];
  }
  idx.unique_ = vids.size() == dict_size;
  if (idx.unique_) {
    for (uint64_t c : counts) {
      if (c > 1) {
        idx.unique_ = false;
        break;
      }
    }
  }

  // Prefix sums become the directory; a scatter pass fills the postinglist.
  // Row positions come out ascending within each vid because the input is
  // scanned in row order.
  std::vector<uint64_t> offsets(dict_size + 1, 0);
  for (uint64_t v = 0; v < dict_size; ++v) {
    offsets[v + 1] = offsets[v] + counts[v];
  }
  idx.postinglist_.resize(vids.size());
  std::vector<uint64_t> cursor = offsets;
  for (uint64_t r = 0; r < vids.size(); ++r) {
    idx.postinglist_[cursor[vids[r]]++] = static_cast<RowPos>(r);
  }
  if (!idx.unique_) {
    idx.directory_ = std::move(offsets);
  }
  return idx;
}

}  // namespace payg
