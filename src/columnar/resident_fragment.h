#ifndef PAYG_COLUMNAR_RESIDENT_FRAGMENT_H_
#define PAYG_COLUMNAR_RESIDENT_FRAGMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "buffer/resource_manager.h"
#include "columnar/dictionary.h"
#include "columnar/fragment.h"
#include "columnar/inverted_index.h"
#include "common/thread_annotations.h"
#include "encoding/bit_packing.h"
#include "encoding/sparse_vector.h"
#include "storage/storage_manager.h"

namespace payg {

// Main fragment of a *default* (fully loadable) column: persisted as one
// page chain and always loaded entirely into memory on first access (§4.1
// "Default columns"). The whole fragment registers as a single resource with
// the resource manager; under memory pressure the weighted LRU may unload
// the entire column at once.
class FullyResidentFragment : public MainFragment {
 public:
  // Data-vector codec: uniform n-bit packing, or sparse encoding ([15],
  // §3.1) when one vid dominates the column. Chosen automatically at build
  // time and persisted.
  enum class Codec : uint8_t {
    kPacked = 0,
    kSparse = 1,
  };

  struct BuildStats {
    uint64_t persisted_bytes = 0;
  };

  // Persists a new fragment to chain `<name>.full` and returns it in the
  // *unloaded* state (first access pays the full-column load, as after a
  // cold start).
  static Result<std::unique_ptr<FullyResidentFragment>> Build(
      StorageManager* storage, ResourceManager* rm, const std::string& name,
      ValueType type, const std::vector<Value>& sorted_dict_values,
      const std::vector<ValueId>& vids, bool with_index);

  // Re-opens a previously built fragment (reads only the meta header).
  static Result<std::unique_ptr<FullyResidentFragment>> Open(
      StorageManager* storage, ResourceManager* rm, const std::string& name);

  ~FullyResidentFragment() override;

  uint64_t row_count() const override { return row_count_; }
  uint64_t dict_size() const override { return dict_size_; }
  ValueType type() const override { return type_; }
  bool has_index() const override { return has_index_; }
  bool is_paged() const override { return false; }

  Result<std::unique_ptr<FragmentReader>> NewReader(
      ExecContext* ctx) override;
  using MainFragment::NewReader;
  void Unload() override;
  uint64_t ResidentBytes() const override;

  // Nanoseconds spent in the most recent full load (0 if never loaded).
  // Benchmarks report this against per-page load cost of paged columns.
  uint64_t last_load_nanos() const {
    MutexLock lock(mu_);
    return last_load_nanos_;
  }
  uint64_t load_count() const {
    MutexLock lock(mu_);
    return load_count_;
  }
  Codec codec() const { return codec_; }

 private:
  friend class ResidentReader;

  FullyResidentFragment(StorageManager* storage, ResourceManager* rm,
                        std::string name)
      : storage_(storage), rm_(rm), name_(std::move(name)) {}

  // Loads the fragment from disk if not resident. Returns the resource id
  // to pin.
  Result<ResourceId> EnsureLoaded();
  void UnloadLocked() REQUIRES(mu_);

  StorageManager* storage_;
  ResourceManager* rm_;
  std::string name_;

  ValueType type_ = ValueType::kInt64;
  uint64_t row_count_ = 0;
  uint64_t dict_size_ = 0;
  uint32_t bits_ = 1;
  bool has_index_ = false;

  Codec codec_ = Codec::kPacked;

  // mu_ guards the load/unload state machine. The payload structures
  // (dict_, data_, sparse_, index_) are deliberately NOT annotated: they are
  // written under mu_ inside EnsureLoaded before the resource is published,
  // then read lock-free by ResidentReader, which holds a pin — the pin (not
  // the mutex) is what keeps eviction away from them. That protocol is not
  // expressible to the thread-safety analysis; see DESIGN.md S21.
  mutable Mutex mu_;
  bool loaded_ GUARDED_BY(mu_) = false;
  ResourceId resource_id_ GUARDED_BY(mu_) = kInvalidResourceId;
  Dictionary dict_;
  PackedVector data_;     // codec_ == kPacked
  SparseVector sparse_;   // codec_ == kSparse
  InvertedIndex index_;
  uint64_t resident_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t last_load_nanos_ GUARDED_BY(mu_) = 0;
  uint64_t load_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace payg

#endif  // PAYG_COLUMNAR_RESIDENT_FRAGMENT_H_
