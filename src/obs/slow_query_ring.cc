#include "obs/slow_query_ring.h"

#include <algorithm>

#include "common/env.h"
#include "obs/metrics.h"

namespace payg::obs {

SlowQueryRing& SlowQueryRing::Global() {
  static auto* ring = new SlowQueryRing(
      static_cast<size_t>(EnvLong("PAYG_SLOW_QUERY_RING", 1, 1024,
                                  /*fallback=*/32)),
      static_cast<uint64_t>(EnvLong("PAYG_SLOW_QUERY_US", 0, 1L << 40,
                                    /*fallback=*/0)));
  return *ring;
}

SlowQueryRing::SlowQueryRing(size_t capacity, uint64_t threshold_us)
    : capacity_(capacity == 0 ? 1 : capacity),
      threshold_us_(threshold_us),
      slots_(new Slot[capacity == 0 ? 1 : capacity]) {}

size_t SlowQueryRing::MinSlot() const {
  size_t best = 0;
  uint64_t best_lat = slots_[0].latency_us.load(std::memory_order_relaxed);
  for (size_t i = 1; i < capacity_; ++i) {
    const uint64_t lat = slots_[i].latency_us.load(std::memory_order_relaxed);
    if (lat < best_lat) {
      best = i;
      best_lat = lat;
    }
  }
  return best;
}

void SlowQueryRing::Observe(const QueryProfile& profile) {
  auto& reg = MetricsRegistry::Global();
  static Counter* observed = reg.counter("profile.observed");
  static Counter* admitted = reg.counter("profile.slow_admitted");
  observed->Inc();
  // wall_us == 0 is both "below any measurable latency" and the empty-slot
  // sentinel; such a profile can never be among the N worst anyway.
  if (profile.wall_us < threshold_us_ || profile.wall_us == 0) return;
  // Two attempts: a lost race against a concurrent Observe re-reads the
  // minimum once, then drops — never blocks, never loops unboundedly.
  for (int attempt = 0; attempt < 2; ++attempt) {
    Slot& slot = slots_[MinSlot()];
    if (slot.latency_us.load(std::memory_order_relaxed) >= profile.wall_us) {
      return;  // already holding something at least as slow
    }
    MutexLock lock(slot.mu);
    // Re-check under the lock: a racer may have installed a slower profile
    // between the scan and the acquire.
    if (slot.latency_us.load(std::memory_order_relaxed) < profile.wall_us) {
      slot.profile = profile;
      slot.latency_us.store(profile.wall_us, std::memory_order_relaxed);
      admitted->Inc();
      return;
    }
  }
}

std::vector<QueryProfile> SlowQueryRing::Snapshot() const {
  std::vector<QueryProfile> out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    if (slot.latency_us.load(std::memory_order_relaxed) == 0) continue;
    MutexLock lock(slot.mu);
    if (slot.latency_us.load(std::memory_order_relaxed) == 0) continue;
    out.push_back(slot.profile);
  }
  std::sort(out.begin(), out.end(),
            [](const QueryProfile& a, const QueryProfile& b) {
              return a.wall_us > b.wall_us;
            });
  return out;
}

std::string SlowQueryRing::DumpJson() const {
  std::vector<QueryProfile> profiles = Snapshot();
  std::string out = "{\"threshold_us\":" + std::to_string(threshold_us_) +
                    ",\"profiles\":[";
  for (size_t i = 0; i < profiles.size(); ++i) {
    if (i > 0) out += ",";
    out += profiles[i].ToJson();
  }
  out += "]}";
  return out;
}

void SlowQueryRing::Reset() {
  for (size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    MutexLock lock(slot.mu);
    slot.profile = QueryProfile();
    slot.latency_us.store(0, std::memory_order_relaxed);
  }
}

}  // namespace payg::obs
