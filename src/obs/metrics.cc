#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace payg::obs {

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target recording, 1-based; ceil so p100 hits the last one.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] < rank) {
      seen += buckets[b];
      continue;
    }
    // Bucket b covers [lo, hi]; place the rank linearly within it.
    const double lo = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (b - 1));
    const double hi = b == 0 ? 0.0
                             : static_cast<double>(uint64_t{1} << (b - 1)) * 2.0;
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(buckets[b]);
    return lo + frac * (hi - lo);
  }
  return 0.0;  // unreachable when count > 0
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (int b = 0; b < kNumBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

void Append(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
}

}  // namespace

std::string MetricsRegistry::TextDump() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    Append(&out, "counter   %-32s %" PRIu64 "\n", name.c_str(), c->value());
  }
  for (const auto& [name, g] : gauges_) {
    Append(&out, "gauge     %-32s %" PRId64 "\n", name.c_str(), g->value());
  }
  for (const auto& [name, h] : histograms_) {
    Histogram::Snapshot s = h->snapshot();
    Append(&out,
           "histogram %-32s count=%" PRIu64 " sum=%" PRIu64
           " mean=%.1f p50=%.1f p95=%.1f p99=%.1f\n",
           name.c_str(), s.count, s.sum, s.mean(), s.p50(), s.p95(), s.p99());
  }
  return out;
}

std::string MetricsRegistry::JsonDump() const {
  MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    Append(&out, "%s\"%s\":%" PRIu64, first ? "" : ",", name.c_str(),
           c->value());
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    Append(&out, "%s\"%s\":%" PRId64, first ? "" : ",", name.c_str(),
           g->value());
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    Histogram::Snapshot s = h->snapshot();
    Append(&out,
           "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
           ",\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,"
           "\"buckets\":[",
           first ? "" : ",", name.c_str(), s.count, s.sum, s.mean(), s.p50(),
           s.p95(), s.p99());
    // Trailing zero buckets are elided to keep dumps small; consumers index
    // from bucket 0.
    int last = Histogram::kNumBuckets - 1;
    while (last > 0 && s.buckets[last] == 0) --last;
    for (int b = 0; b <= last; ++b) {
      Append(&out, "%s%" PRIu64, b == 0 ? "" : ",", s.buckets[b]);
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

namespace {

// "cache.shard0.pages" -> "payg_cache_shard0_pages". Registry names are
// lowercase dotted paths (lint-enforced), so dots-to-underscores already
// yields a legal Prometheus metric name.
std::string PromName(const std::string& name) {
  std::string out = "payg_";
  out.reserve(out.size() + name.size());
  for (char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

}  // namespace

std::string MetricsRegistry::PrometheusDump() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string n = PromName(name);
    Append(&out, "# TYPE %s counter\n", n.c_str());
    Append(&out, "%s_total %" PRIu64 "\n", n.c_str(), c->value());
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = PromName(name);
    Append(&out, "# TYPE %s gauge\n", n.c_str());
    Append(&out, "%s %" PRId64 "\n", n.c_str(), g->value());
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = PromName(name);
    Histogram::Snapshot s = h->snapshot();
    Append(&out, "# TYPE %s histogram\n", n.c_str());
    // Cumulative counts at the log2 bucket upper bounds: bucket 0 is {0}
    // (le="0"), bucket i >= 1 is [2^(i-1), 2^i - 1] (le = 2^i - 1).
    // Trailing empty buckets are elided; +Inf always closes the series.
    int last = Histogram::kNumBuckets - 1;
    while (last > 0 && s.buckets[last] == 0) --last;
    uint64_t cumulative = 0;
    for (int b = 0; b <= last; ++b) {
      cumulative += s.buckets[b];
      const uint64_t le =
          b == 0 ? 0 : (b == 64 ? ~uint64_t{0} : (uint64_t{1} << b) - 1);
      Append(&out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n", n.c_str(),
             le, cumulative);
    }
    // +Inf and _count repeat the bucket total (not the count_ word): the
    // snapshot's fields are loaded one relaxed atomic at a time, so under
    // concurrent recording count_ can disagree with the bucket sum by a few
    // in-flight events — deriving both from the buckets keeps the series
    // monotone and self-consistent, which scrapers validate.
    Append(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", n.c_str(),
           cumulative);
    Append(&out, "%s_sum %" PRIu64 "\n", n.c_str(), s.sum);
    Append(&out, "%s_count %" PRIu64 "\n", n.c_str(), cumulative);
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace payg::obs
