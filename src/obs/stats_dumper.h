#ifndef PAYG_OBS_STATS_DUMPER_H_
#define PAYG_OBS_STATS_DUMPER_H_

#include <cstdint>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace payg::obs {

// Background exporter of the process observability surface. Every period it
// atomically rewrites three files in the target directory:
//   metrics.json      — MetricsRegistry::JsonDump()
//   metrics.prom      — MetricsRegistry::PrometheusDump() (scrape format)
//   slow_queries.json — SlowQueryRing::Global().DumpJson()
// Each write goes to "<name>.tmp" then renames over the target, so a reader
// (node_exporter textfile collector, a tailing script) never sees a torn
// file. Off by default; armed by PAYG_STATS_DUMP_SECS > 0 with the target
// directory from PAYG_STATS_DIR (default "payg_stats", created on demand).
class StatsDumper {
 public:
  static StatsDumper& Global();

  StatsDumper() = default;
  ~StatsDumper() { Stop(); }

  StatsDumper(const StatsDumper&) = delete;
  StatsDumper& operator=(const StatsDumper&) = delete;

  // Reads PAYG_STATS_DUMP_SECS / PAYG_STATS_DIR and starts the background
  // thread when the period is non-zero. Idempotent; called from
  // ColumnStore::Open so any store-embedding process gets the exporter for
  // free once the env is set.
  void StartFromEnv();

  // Starts dumping every `period_secs` into `dir`. No-op if already
  // running (the first configuration wins until Stop).
  void Start(uint64_t period_secs, std::string dir);

  // Stops and joins the background thread, then writes one final export so
  // a process that exits before the first period still leaves a consistent
  // last snapshot on disk. Safe to call when not running. Start registers
  // an atexit hook that calls this, so clean process exit flushes too.
  void Stop();

  // One synchronous export into `dir` (also what the background thread
  // runs). Public for tests and for on-demand dumps.
  static Status DumpOnce(const std::string& dir);

  bool running() const;

 private:
  void Loop(uint64_t period_secs, std::string dir);

  mutable Mutex mu_;
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool running_ GUARDED_BY(mu_) = false;
  std::string dir_ GUARDED_BY(mu_);
  std::thread thread_;
};

}  // namespace payg::obs

#endif  // PAYG_OBS_STATS_DUMPER_H_
