#include "obs/stats_dumper.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/env.h"
#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/slow_query_ring.h"

namespace payg::obs {

namespace {

// tmp-then-rename so a concurrent reader never observes a torn file.
Status WriteFileAtomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("stats dump: cannot open " + tmp);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != body.size() || !closed) {
    std::remove(tmp.c_str());
    return Status::IOError("stats dump: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("stats dump: rename to " + path + " failed");
  }
  return Status::OK();
}

}  // namespace

StatsDumper& StatsDumper::Global() {
  static auto* dumper = new StatsDumper();
  return *dumper;
}

void StatsDumper::StartFromEnv() {
  const uint64_t secs = static_cast<uint64_t>(
      EnvLong("PAYG_STATS_DUMP_SECS", 0, 86400, /*fallback=*/0));
  if (secs == 0) return;  // off by default
  const char* dir = EnvRaw("PAYG_STATS_DIR");
  Start(secs, dir != nullptr ? dir : "payg_stats");
}

void StatsDumper::Start(uint64_t period_secs, std::string dir) {
  if (period_secs == 0) return;
  {
    MutexLock lock(mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
    dir_ = dir;
  }
  thread_ = std::thread(
      [this, period_secs, d = std::move(dir)] { Loop(period_secs, d); });
  // Flush-at-exit: a process that opens a store, runs for less than one
  // period and exits cleanly would otherwise never write anything. The
  // global is never destroyed, so this is the only shutdown path.
  static const bool registered = [] {
    std::atexit([] { StatsDumper::Global().Stop(); });
    return true;
  }();
  (void)registered;
}

void StatsDumper::Stop() {
  std::string dir;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
    dir = dir_;
  }
  cv_.NotifyAll();
  thread_.join();
  {
    MutexLock lock(mu_);
    running_ = false;
  }
  // Final export after the join: the files always end up reflecting the
  // last state of the process, even when no periodic dump ever fired.
  (void)DumpOnce(dir);  // lint:allow(dropped-status) best-effort at shutdown
}

bool StatsDumper::running() const {
  MutexLock lock(mu_);
  return running_;
}

void StatsDumper::Loop(uint64_t period_secs, std::string dir) {
  auto& reg = MetricsRegistry::Global();
  static Counter* dumps = reg.counter("profile.stats_dumps");
  static Counter* failures = reg.counter("profile.stats_dump_failures");
  for (;;) {
    {
      MutexLock lock(mu_);
      // Explicit loop (not a predicate lambda) so the analysis sees the
      // guarded read; a spurious wake just dumps slightly early.
      if (!stop_) cv_.WaitFor(mu_, std::chrono::seconds(period_secs));
      if (stop_) return;
    }
    if (DumpOnce(dir).ok()) {
      dumps->Inc();
    } else {
      failures->Inc();  // transient (disk full, dir removed); keep running
    }
  }
}

Status StatsDumper::DumpOnce(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("stats dump: cannot create " + dir);
  }
  auto& reg = MetricsRegistry::Global();
  PAYG_RETURN_IF_ERROR(
      WriteFileAtomic(dir + "/metrics.json", reg.JsonDump()));
  PAYG_RETURN_IF_ERROR(
      WriteFileAtomic(dir + "/metrics.prom", reg.PrometheusDump()));
  PAYG_RETURN_IF_ERROR(WriteFileAtomic(dir + "/slow_queries.json",
                                       SlowQueryRing::Global().DumpJson()));
  return Status::OK();
}

}  // namespace payg::obs
