#ifndef PAYG_OBS_QUERY_PROFILE_H_
#define PAYG_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace payg::obs {

// Per-query stage breakdown — EXPLAIN ANALYZE for the Table-2 query shapes.
// Filled by QueryExecutor at query completion from the ExecContext counter
// deltas and the executor's own timers; pure data so it can live in obs
// (below exec in the dependency order) and flow through the slow-query ring
// and the stats dumper without dragging executor types along.
//
// Stage accounting identity (asserted by profile_test): for a query that
// runs serially, queue_wait_us + scan_us ≈ wall_us; page_cold_us +
// page_hit_us is contained in scan_us (page waits happen inside partition
// tasks, they are a decomposition, not an addend).
struct QueryProfile {
  uint64_t query_id = 0;

  // --- timing (microseconds) ---
  uint64_t wall_us = 0;        // ForEach entry to join
  uint64_t queue_wait_us = 0;  // sum over tasks: submit -> worker pickup
  uint64_t scan_us = 0;        // sum over tasks: partition task duration
  std::vector<uint64_t> partition_us;  // slot i = partition i's task time

  // --- page reads, split cold (physical load) vs hit (resident pin) ---
  uint64_t page_cold_count = 0;
  uint64_t page_cold_us = 0;
  uint64_t page_hit_count = 0;
  uint64_t page_hit_us = 0;
  uint64_t bytes_read = 0;

  // --- work shape ---
  uint64_t rows_scanned = 0;
  uint64_t index_lookups = 0;  // partitions answered via inverted index
  uint64_t vector_scans = 0;   // partitions answered via data-vector scan
  uint64_t codec_native = 0;   // kernels run on the compressed image
  uint64_t codec_fallback = 0; // kernels via decode-into-scratch
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t partitions = 0;
  bool deadline_exceeded = false;

  // One line, key=value, for logs:
  //   qid=7 wall_us=1234 queue_us=2 scan_us=1200 cold=5/1100us hit=12/3us ...
  std::string ToText() const;
  // Structured form with the same fields plus the per-partition vector.
  std::string ToJson() const;
};

}  // namespace payg::obs

#endif  // PAYG_OBS_QUERY_PROFILE_H_
