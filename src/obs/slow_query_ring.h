#ifndef PAYG_OBS_SLOW_QUERY_RING_H_
#define PAYG_OBS_SLOW_QUERY_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/query_profile.h"

namespace payg::obs {

// Keeps the N worst query profiles by wall latency. Mutex-striped: every
// slot carries its own mutex plus a relaxed-atomic latency word, so Observe
// scans lock-free for the current minimum and locks exactly one slot to
// replace it — concurrent queries finishing on different slots never
// contend, and a dump only blocks the one slot it is copying.
//
// Admission protocol (documented in DESIGN.md §S23):
//   1. wall_us below the threshold (PAYG_SLOW_QUERY_US, default 0 = keep
//      everything) is dropped without touching any slot.
//   2. Otherwise scan the latency words for the smallest entry; if the new
//      profile is slower, lock that slot, re-check under the lock (a racing
//      Observe may have filled it with something slower), and replace.
//   3. A lost race retries once against the fresh minimum, then gives up —
//      the ring tracks "roughly the N worst", not a total order, and no
//      query ever blocks on another query's bookkeeping.
class SlowQueryRing {
 public:
  // Process-wide instance: capacity PAYG_SLOW_QUERY_RING (default 32,
  // clamped to [1, 1024]), threshold PAYG_SLOW_QUERY_US (default 0).
  static SlowQueryRing& Global();

  explicit SlowQueryRing(size_t capacity, uint64_t threshold_us);

  SlowQueryRing(const SlowQueryRing&) = delete;
  SlowQueryRing& operator=(const SlowQueryRing&) = delete;

  // Offers a completed profile for admission; cheap no-op when faster than
  // the threshold and the current ring minimum.
  void Observe(const QueryProfile& profile);

  // Occupied slots, slowest first. Safe while queries keep finishing.
  std::vector<QueryProfile> Snapshot() const;

  // {"threshold_us":..,"profiles":[..]} with profiles slowest first.
  std::string DumpJson() const;

  void Reset();

  size_t capacity() const { return capacity_; }
  uint64_t threshold_us() const { return threshold_us_; }

 private:
  struct Slot {
    // Mirror of profile.wall_us (0 = empty), readable without the mutex so
    // the min-scan stays lock-free. The mutex guards the profile payload.
    std::atomic<uint64_t> latency_us{0};
    mutable Mutex mu;
    QueryProfile profile GUARDED_BY(mu);
  };

  // Index of the smallest latency word (relaxed scan; racy by design).
  size_t MinSlot() const;

  const size_t capacity_;
  const uint64_t threshold_us_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace payg::obs

#endif  // PAYG_OBS_SLOW_QUERY_RING_H_
