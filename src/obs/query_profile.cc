#include "obs/query_profile.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace payg::obs {

namespace {

void Append(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    size_t len = static_cast<size_t>(n);
    if (len > sizeof(buf) - 1) len = sizeof(buf) - 1;
    out->append(buf, len);
  }
}

}  // namespace

std::string QueryProfile::ToText() const {
  std::string out;
  Append(&out,
         "qid=%" PRIu64 " wall_us=%" PRIu64 " queue_us=%" PRIu64
         " scan_us=%" PRIu64 " parts=%" PRIu64 " cold=%" PRIu64 "/%" PRIu64
         "us hit=%" PRIu64 "/%" PRIu64 "us bytes=%" PRIu64 " rows=%" PRIu64
         " index=%" PRIu64 " vscan=%" PRIu64 " codec=%" PRIu64 "n/%" PRIu64
         "f prefetch=%" PRIu64 "/%" PRIu64 "%s",
         query_id, wall_us, queue_wait_us, scan_us, partitions,
         page_cold_count, page_cold_us, page_hit_count, page_hit_us,
         bytes_read, rows_scanned, index_lookups, vector_scans, codec_native,
         codec_fallback, prefetch_issued, prefetch_hits,
         deadline_exceeded ? " DEADLINE" : "");
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out;
  Append(&out,
         "{\"query_id\":%" PRIu64 ",\"wall_us\":%" PRIu64
         ",\"queue_wait_us\":%" PRIu64 ",\"scan_us\":%" PRIu64
         ",\"partitions\":%" PRIu64 ",\"page_cold_count\":%" PRIu64
         ",\"page_cold_us\":%" PRIu64 ",\"page_hit_count\":%" PRIu64
         ",\"page_hit_us\":%" PRIu64 ",\"bytes_read\":%" PRIu64
         ",\"rows_scanned\":%" PRIu64 ",\"index_lookups\":%" PRIu64
         ",\"vector_scans\":%" PRIu64 ",\"codec_native\":%" PRIu64
         ",\"codec_fallback\":%" PRIu64 ",\"prefetch_issued\":%" PRIu64
         ",\"prefetch_hits\":%" PRIu64 ",\"deadline_exceeded\":%s"
         ",\"partition_us\":[",
         query_id, wall_us, queue_wait_us, scan_us, partitions,
         page_cold_count, page_cold_us, page_hit_count, page_hit_us,
         bytes_read, rows_scanned, index_lookups, vector_scans, codec_native,
         codec_fallback, prefetch_issued, prefetch_hits,
         deadline_exceeded ? "true" : "false");
  for (size_t i = 0; i < partition_us.size(); ++i) {
    Append(&out, "%s%" PRIu64, i == 0 ? "" : ",", partition_us[i]);
  }
  out += "]}";
  return out;
}

}  // namespace payg::obs
