#ifndef PAYG_OBS_TRACE_H_
#define PAYG_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace payg::obs {

// One completed span. `category`/`name` must be string literals (the ring
// stores the pointers, not copies); `arg` carries one span-specific number
// (partition index, logical page number, ...).
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  uint64_t start_ns = 0;  // relative to the ring's epoch (Enable() time)
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // small per-thread id, stable for the process lifetime
  uint64_t arg = 0;
};

// Fixed-size lock-free span ring shared by the whole process. Disabled by
// default: the only cost a span pays then is one relaxed atomic load.
// Enable(capacity) arms tracing with a fresh ring (new epoch, empty
// buffer); Disable() stops recording but keeps the ring for dumping.
//
// Writers claim a ticket with one fetch_add and publish their slot through
// a per-slot sequence word (CAS prev-lap value -> busy, write payload,
// release-store the new value). When the ring wraps, the oldest events are
// overwritten; if a slot is still held by a slow writer (or a concurrent
// dump), the new event is dropped and counted instead of blocking — no
// producer ever waits.
class Tracer {
 public:
  static Tracer& Global();

  // True while spans are being recorded. Single relaxed load — this is the
  // entire disabled-path cost of a TraceSpan.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Arms tracing with a fresh ring of `capacity` events (rounded up to a
  // power of two). Previous rings stay alive (in-flight spans may still
  // target them) but stop receiving events.
  void Enable(size_t capacity = 1 << 16);
  void Disable();

  // Records a completed span that started at `start` (steady clock).
  void RecordSpan(const char* category, const char* name,
                  std::chrono::steady_clock::time_point start, uint64_t arg);

  // Events currently in the ring, in start-time order. Safe to call while
  // tracing is live; slots being written concurrently are skipped.
  std::vector<TraceEvent> Collect() const;

  // Chrome trace-event JSON ("X" complete events, ts/dur in microseconds).
  // Load in Perfetto / chrome://tracing.
  std::string DumpChromeTrace() const;

  // Events rejected because their slot was busy (slow writer on the
  // previous lap or a concurrent dump). 0 in any non-pathological run.
  uint64_t dropped() const;
  // Tickets handed out since Enable (= recorded + dropped).
  uint64_t recorded() const;

 private:
  struct Slot {
    // kEmpty, kBusy, or ticket + 2 of the event the slot holds.
    std::atomic<uint64_t> seq{0};
    TraceEvent ev;
  };
  struct Ring {
    Ring(size_t cap, std::chrono::steady_clock::time_point ep)
        : capacity(cap), epoch(ep), slots(new Slot[cap]) {}
    const size_t capacity;
    const std::chrono::steady_clock::time_point epoch;
    std::unique_ptr<Slot[]> slots;
    std::atomic<uint64_t> head{0};
    std::atomic<uint64_t> dropped{0};
  };
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kBusy = 1;

  Tracer() = default;

  static std::atomic<bool> enabled_;

  std::atomic<Ring*> ring_{nullptr};
  // Rings are retired, never freed, so a span that straddled a re-Enable
  // still writes into valid memory. Bounded by the number of Enable calls.
  // control_mu_ serializes Enable() only; recording reads the current ring
  // through the ring_ atomic, never under a lock.
  Mutex control_mu_;
  std::vector<std::unique_ptr<Ring>> rings_ GUARDED_BY(control_mu_);
};

// RAII span: measures construction-to-destruction and records it into the
// global tracer. When tracing is disabled the constructor is one relaxed
// atomic load and the destructor one predictable branch.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name, uint64_t arg = 0)
      : category_(category), name_(name), arg_(arg),
        armed_(Tracer::enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (armed_) {
      Tracer::Global().RecordSpan(category_, name_, start_, arg_);
    }
  }

 private:
  const char* category_;
  const char* name_;
  uint64_t arg_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace payg::obs

#endif  // PAYG_OBS_TRACE_H_
