#ifndef PAYG_OBS_TRACE_H_
#define PAYG_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace payg::obs {

// One completed span. `category`/`name` must be string literals (the ring
// stores the pointers, not copies); `arg` carries one span-specific number
// (partition index, logical page number, ...). `span_id`/`parent_id` link
// spans into per-query trees (0 = root / unknown) and `query_id` stamps
// every span recorded while a query scope was active on the thread, so a
// Perfetto dump groups each query's partition/page-read/sweep spans into
// one nested tree instead of an unordered soup.
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  uint64_t start_ns = 0;  // relative to the ring's epoch (Enable() time)
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // small per-thread id, stable for the process lifetime
  uint64_t arg = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  uint64_t query_id = 0;
};

// Thread-local span/query context. Span nesting is maintained by TraceSpan
// itself; the query id is installed by TraceTaskScope (below) around a
// query's work on each thread that executes part of it.
uint64_t CurrentSpanId();
uint64_t CurrentQueryId();

// Fixed-size lock-free span ring shared by the whole process. Disabled by
// default: the only cost a span pays then is one relaxed atomic load.
// Enable(capacity) arms tracing with a fresh ring (new epoch, empty
// buffer); Disable() stops recording but keeps the ring for dumping.
//
// Writers claim a ticket with one fetch_add and publish their slot through
// a per-slot sequence word (CAS prev-lap value -> busy, write payload,
// release-store the new value). When the ring wraps, the oldest events are
// overwritten; if a slot is still held by a slow writer (or a concurrent
// dump), the new event is dropped and counted instead of blocking — no
// producer ever waits.
class Tracer {
 public:
  static Tracer& Global();

  // True while spans are being recorded. Single relaxed load — this is the
  // entire disabled-path cost of a TraceSpan.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Arms tracing with a fresh ring of `capacity` events (rounded up to a
  // power of two). Previous rings stay alive (in-flight spans may still
  // target them) but stop receiving events.
  void Enable(size_t capacity = 1 << 16);
  void Disable();

  // Records a completed span that started at `start` (steady clock).
  // `span_id` == 0 (the direct-call form, no TraceSpan on the stack) mints
  // a fresh id with the thread's current span as parent; the query id is
  // always taken from the calling thread's scope.
  void RecordSpan(const char* category, const char* name,
                  std::chrono::steady_clock::time_point start, uint64_t arg,
                  uint64_t span_id = 0, uint64_t parent_id = 0);

  // Labels the calling thread in trace dumps ("exec-worker-3", "io-pool-0").
  // Unnamed threads show as "thread-<tid>". Idempotent; last name wins.
  static void SetCurrentThreadName(const std::string& name);

  // Events currently in the ring, in start-time order. Safe to call while
  // tracing is live; slots being written concurrently are skipped.
  std::vector<TraceEvent> Collect() const;

  // Chrome trace-event JSON ("X" complete events, ts/dur in microseconds,
  // span/parent/query ids as args, plus "M" metadata events carrying the
  // process name and per-thread names). Load in Perfetto / chrome://tracing.
  std::string DumpChromeTrace() const;

  // Events rejected because their slot was busy (slow writer on the
  // previous lap or a concurrent dump). 0 in any non-pathological run.
  uint64_t dropped() const;
  // Tickets handed out since Enable (= recorded + dropped).
  uint64_t recorded() const;

 private:
  struct Slot {
    // kEmpty, kBusy, or ticket + 2 of the event the slot holds.
    std::atomic<uint64_t> seq{0};
    TraceEvent ev;
  };
  struct Ring {
    Ring(size_t cap, std::chrono::steady_clock::time_point ep)
        : capacity(cap), epoch(ep), slots(new Slot[cap]) {}
    const size_t capacity;
    const std::chrono::steady_clock::time_point epoch;
    std::unique_ptr<Slot[]> slots;
    std::atomic<uint64_t> head{0};
    std::atomic<uint64_t> dropped{0};
  };
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kBusy = 1;

  Tracer() = default;

  static std::atomic<bool> enabled_;

  std::atomic<Ring*> ring_{nullptr};
  // Rings are retired, never freed, so a span that straddled a re-Enable
  // still writes into valid memory. Bounded by the number of Enable calls.
  // control_mu_ serializes Enable() only; recording reads the current ring
  // through the ring_ atomic, never under a lock.
  Mutex control_mu_;
  std::vector<std::unique_ptr<Ring>> rings_ GUARDED_BY(control_mu_);

  // tid -> display name, written once per thread at startup, read only by
  // DumpChromeTrace. Separate from the rings: names survive re-Enable.
  mutable Mutex names_mu_;
  std::map<uint32_t, std::string> thread_names_ GUARDED_BY(names_mu_);
};

// Span-stack maintenance for TraceSpan (defined here, implemented in the
// .cc so the thread-local stays private): BeginSpan mints an id, makes it
// the thread's current span and returns the previous one through `parent`;
// EndSpan restores `parent`.
uint64_t BeginSpan(uint64_t* parent);
void EndSpan(uint64_t parent);

// RAII span: measures construction-to-destruction and records it into the
// global tracer. When tracing is disabled the constructor is one relaxed
// atomic load and the destructor one predictable branch. While armed, the
// span is the thread's current span, so spans opened below it (same thread)
// become its children.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name, uint64_t arg = 0)
      : category_(category), name_(name), arg_(arg),
        armed_(Tracer::enabled()) {
    if (armed_) {
      start_ = std::chrono::steady_clock::now();
      span_id_ = BeginSpan(&parent_id_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (armed_) {
      EndSpan(parent_id_);
      Tracer::Global().RecordSpan(category_, name_, start_, arg_, span_id_,
                                  parent_id_);
    }
  }

  // This span's id while armed, 0 when tracing was off at construction.
  // Hand it to TraceTaskScope on worker threads to parent their spans here.
  uint64_t span_id() const { return armed_ ? span_id_ : 0; }

 private:
  const char* category_;
  const char* name_;
  uint64_t arg_;
  bool armed_;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// Installs a query id (and optionally a parent span id) as the calling
// thread's trace context for the scope's lifetime — the cross-thread
// propagation primitive: the executor wraps each pooled partition task in
// one of these so page-read spans on worker threads parent under the
// query span and carry its query id. Two thread-local writes each way;
// safe (and cheap) to use whether or not tracing is enabled.
class TraceTaskScope {
 public:
  explicit TraceTaskScope(uint64_t query_id, uint64_t parent_span_id = 0);
  ~TraceTaskScope();

  TraceTaskScope(const TraceTaskScope&) = delete;
  TraceTaskScope& operator=(const TraceTaskScope&) = delete;

 private:
  uint64_t saved_span_;
  uint64_t saved_query_;
};

}  // namespace payg::obs

#endif  // PAYG_OBS_TRACE_H_
