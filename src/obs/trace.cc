#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace payg::obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

// Small dense thread ids for trace output (std::thread::id is opaque and
// unstable across runs).
uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

Tracer& Tracer::Global() {
  static auto* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t capacity) {
  MutexLock lock(control_mu_);
  if (capacity < 2) capacity = 2;
  rings_.push_back(std::make_unique<Ring>(RoundUpPow2(capacity),
                                          std::chrono::steady_clock::now()));
  ring_.store(rings_.back().get(), std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void Tracer::RecordSpan(const char* category, const char* name,
                        std::chrono::steady_clock::time_point start,
                        uint64_t arg) {
  if (!enabled()) return;  // disabled between span start and end
  Ring* r = ring_.load(std::memory_order_acquire);
  if (r == nullptr) return;

  TraceEvent ev;
  ev.category = category;
  ev.name = name;
  const auto now = std::chrono::steady_clock::now();
  // A span that started before Enable() clamps to the epoch.
  const auto from = start < r->epoch ? r->epoch : start;
  ev.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(from - r->epoch)
          .count());
  ev.dur_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - from)
          .count());
  ev.tid = CurrentTid();
  ev.arg = arg;

  const uint64_t ticket = r->head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = r->slots[ticket & (r->capacity - 1)];
  // The slot is free when it still carries the publication value of the
  // previous lap (kEmpty on the first lap). Anything else means a writer or
  // dumper holds it; drop rather than wait.
  uint64_t expect = ticket >= r->capacity ? ticket - r->capacity + 2 : kEmpty;
  if (!slot.seq.compare_exchange_strong(expect, kBusy,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    r->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.ev = ev;
  slot.seq.store(ticket + 2, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> events;
  Ring* r = ring_.load(std::memory_order_acquire);
  if (r == nullptr) return events;
  events.reserve(std::min<uint64_t>(r->capacity,
                                    r->head.load(std::memory_order_relaxed)));
  for (size_t i = 0; i < r->capacity; ++i) {
    Slot& slot = r->slots[i];
    uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq < 2) continue;  // empty or mid-write
    // Hold the slot while copying so a wrapping writer can't tear the
    // payload under us; the writer drops its event instead (counted).
    if (!slot.seq.compare_exchange_strong(seq, kBusy,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      continue;
    }
    events.push_back(slot.ev);
    slot.seq.store(seq, std::memory_order_release);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return events;
}

std::string Tracer::DumpChromeTrace() const {
  std::vector<TraceEvent> events = Collect();
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    int n = std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"v\":%llu}}",
        i == 0 ? "" : ",", e.name, e.category, e.start_ns / 1e3, e.dur_ns / 1e3,
        e.tid, static_cast<unsigned long long>(e.arg));
    if (n > 0) out.append(buf, static_cast<size_t>(n));
  }
  out += "]}";
  return out;
}

uint64_t Tracer::dropped() const {
  Ring* r = ring_.load(std::memory_order_acquire);
  return r == nullptr ? 0 : r->dropped.load(std::memory_order_relaxed);
}

uint64_t Tracer::recorded() const {
  Ring* r = ring_.load(std::memory_order_acquire);
  return r == nullptr ? 0 : r->head.load(std::memory_order_relaxed);
}

}  // namespace payg::obs
