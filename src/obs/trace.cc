#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace payg::obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

// Small dense thread ids for trace output (std::thread::id is opaque and
// unstable across runs).
uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Per-thread trace context. `span` is the innermost armed TraceSpan (the
// parent of whatever opens next); `query` is installed by TraceTaskScope
// and stamped on every event the thread records.
struct TraceTls {
  uint64_t span = 0;
  uint64_t query = 0;
};

TraceTls& Tls() {
  thread_local TraceTls tls;
  return tls;
}

std::atomic<uint64_t> g_next_span_id{1};

}  // namespace

uint64_t CurrentSpanId() { return Tls().span; }
uint64_t CurrentQueryId() { return Tls().query; }

uint64_t BeginSpan(uint64_t* parent) {
  TraceTls& tls = Tls();
  *parent = tls.span;
  const uint64_t id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  tls.span = id;
  return id;
}

void EndSpan(uint64_t parent) { Tls().span = parent; }

TraceTaskScope::TraceTaskScope(uint64_t query_id, uint64_t parent_span_id) {
  TraceTls& tls = Tls();
  saved_span_ = tls.span;
  saved_query_ = tls.query;
  tls.span = parent_span_id;
  tls.query = query_id;
}

TraceTaskScope::~TraceTaskScope() {
  TraceTls& tls = Tls();
  tls.span = saved_span_;
  tls.query = saved_query_;
}

Tracer& Tracer::Global() {
  static auto* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t capacity) {
  MutexLock lock(control_mu_);
  if (capacity < 2) capacity = 2;
  rings_.push_back(std::make_unique<Ring>(RoundUpPow2(capacity),
                                          std::chrono::steady_clock::now()));
  ring_.store(rings_.back().get(), std::memory_order_release);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  Tracer& t = Global();
  MutexLock lock(t.names_mu_);
  t.thread_names_[CurrentTid()] = name;
}

void Tracer::RecordSpan(const char* category, const char* name,
                        std::chrono::steady_clock::time_point start,
                        uint64_t arg, uint64_t span_id, uint64_t parent_id) {
  if (!enabled()) return;  // disabled between span start and end
  Ring* r = ring_.load(std::memory_order_acquire);
  if (r == nullptr) return;

  TraceEvent ev;
  ev.category = category;
  ev.name = name;
  const auto now = std::chrono::steady_clock::now();
  // A span that started before Enable() clamps to the epoch.
  const auto from = start < r->epoch ? r->epoch : start;
  ev.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(from - r->epoch)
          .count());
  ev.dur_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - from)
          .count());
  ev.tid = CurrentTid();
  ev.arg = arg;
  if (span_id == 0) {
    // Direct RecordSpan call with no TraceSpan on the stack: mint an id so
    // the event is still addressable, parented under the current span.
    span_id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
    parent_id = Tls().span;
  }
  ev.span_id = span_id;
  ev.parent_id = parent_id;
  ev.query_id = Tls().query;

  const uint64_t ticket = r->head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = r->slots[ticket & (r->capacity - 1)];
  // The slot is free when it still carries the publication value of the
  // previous lap (kEmpty on the first lap). Anything else means a writer or
  // dumper holds it; drop rather than wait.
  uint64_t expect = ticket >= r->capacity ? ticket - r->capacity + 2 : kEmpty;
  if (!slot.seq.compare_exchange_strong(expect, kBusy,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    r->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.ev = ev;
  slot.seq.store(ticket + 2, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> events;
  Ring* r = ring_.load(std::memory_order_acquire);
  if (r == nullptr) return events;
  events.reserve(std::min<uint64_t>(r->capacity,
                                    r->head.load(std::memory_order_relaxed)));
  for (size_t i = 0; i < r->capacity; ++i) {
    Slot& slot = r->slots[i];
    uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq < 2) continue;  // empty or mid-write
    // Hold the slot while copying so a wrapping writer can't tear the
    // payload under us; the writer drops its event instead (counted).
    if (!slot.seq.compare_exchange_strong(seq, kBusy,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      continue;
    }
    events.push_back(slot.ev);
    slot.seq.store(seq, std::memory_order_release);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return events;
}

std::string Tracer::DumpChromeTrace() const {
  std::vector<TraceEvent> events = Collect();
  std::string out = "{\"traceEvents\":[";
  char buf[320];
  // Metadata first: the process name and one thread_name per tid that
  // appears in the dump, so Perfetto lanes carry role labels
  // ("exec-worker-0") instead of bare numbers.
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"payg\"}}";
  {
    std::vector<uint32_t> tids;
    tids.reserve(events.size());
    for (const TraceEvent& e : events) tids.push_back(e.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    MutexLock lock(names_mu_);
    for (uint32_t tid : tids) {
      auto it = thread_names_.find(tid);
      const std::string name = it != thread_names_.end()
                                   ? it->second
                                   : "thread-" + std::to_string(tid);
      int n = std::snprintf(buf, sizeof(buf),
                            ",{\"name\":\"thread_name\",\"ph\":\"M\","
                            "\"pid\":1,\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                            tid, name.c_str());
      if (n > 0) out.append(buf, static_cast<size_t>(n));
    }
  }
  for (const TraceEvent& e : events) {
    int n = std::snprintf(
        buf, sizeof(buf),
        ",{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{\"v\":%llu,"
        "\"qid\":%llu,\"span\":%llu,\"parent\":%llu}}",
        e.name, e.category, e.start_ns / 1e3, e.dur_ns / 1e3, e.tid,
        static_cast<unsigned long long>(e.arg),
        static_cast<unsigned long long>(e.query_id),
        static_cast<unsigned long long>(e.span_id),
        static_cast<unsigned long long>(e.parent_id));
    if (n > 0) out.append(buf, static_cast<size_t>(n));
  }
  out += "]}";
  return out;
}

uint64_t Tracer::dropped() const {
  Ring* r = ring_.load(std::memory_order_acquire);
  return r == nullptr ? 0 : r->dropped.load(std::memory_order_relaxed);
}

uint64_t Tracer::recorded() const {
  Ring* r = ring_.load(std::memory_order_acquire);
  return r == nullptr ? 0 : r->head.load(std::memory_order_relaxed);
}

}  // namespace payg::obs
