#ifndef PAYG_OBS_METRICS_H_
#define PAYG_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"

namespace payg::obs {

// Monotonically increasing event count. All mutators use relaxed atomics:
// metrics are statistics, never synchronization.
class Counter {
 public:
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Inc() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Point-in-time level (bytes resident, resources tracked, ...). Signed so
// Add(-delta) works.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

// Log2-bucketed histogram for latency-like values (typically microseconds).
// Bucket i holds values whose bit width is i: bucket 0 is exactly {0},
// bucket i (i >= 1) is [2^(i-1), 2^i - 1]. Recording is a single relaxed
// fetch_add per bucket plus count/sum upkeep — safe and cheap on hot paths
// from any number of threads. Quantiles are derived from a snapshot by
// linear interpolation inside the containing bucket, so p50/p95/p99 carry
// at most one-bucket (2x) resolution error, which is the right tool for
// "did the read path get slower" questions.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // bit_width(uint64_t) in [0, 64]

  void Record(uint64_t value) {
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    // Value below which a fraction q of recordings fall (q in [0, 1]),
    // interpolated within the containing bucket. 0 when empty.
    double Quantile(double q) const;
    double p50() const { return Quantile(0.50); }
    double p95() const { return Quantile(0.95); }
    double p99() const { return Quantile(0.99); }
    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  Snapshot snapshot() const;
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Process-wide registry of named metrics. Names are dotted paths
// ("layer.event.unit", e.g. "storage.read.latency_us"); the set of names
// used by the engine is documented in DESIGN.md. Lookup takes a mutex and
// returns a stable pointer — hot paths resolve their metrics once (at
// construction) and bump through the pointer. Entries are never removed;
// Reset zeroes values but keeps registrations, so cached pointers stay
// valid across ResetAll().
class MetricsRegistry {
 public:
  // The process-wide instance (leaky singleton: safe to use from static
  // destructors).
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. The same name always yields the same object; a name
  // identifies one kind only (counter XOR gauge XOR histogram).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Human-readable exposition, one metric per line, sorted by name.
  std::string TextDump() const;
  // Machine-readable exposition:
  // {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  //  "sum":..,"mean":..,"p50":..,"p95":..,"p99":..,"buckets":[..]}}}
  std::string JsonDump() const;
  // Prometheus text exposition (v0.0.4): dotted names mangled to
  // `payg_<name_with_underscores>`, counters suffixed `_total`, histograms
  // emitted as cumulative `_bucket{le="..."}` series over the log2 bucket
  // upper bounds (le = 2^i - 1) plus `_sum`/`_count`. This is the scrape
  // surface the stats dumper writes to metrics.prom and a future server
  // endpoint serves verbatim.
  std::string PrometheusDump() const;

  // Zeroes every registered metric (bench phase boundaries, tests).
  void ResetAll();

 private:
  // Guards the name->object maps only; the metric objects themselves are
  // all-atomic and are mutated through cached stable pointers without mu_.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace payg::obs

#endif  // PAYG_OBS_METRICS_H_
