#ifndef PAYG_BUFFER_RESOURCE_MANAGER_H_
#define PAYG_BUFFER_RESOURCE_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "buffer/disposition.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace payg {

using ResourceId = uint64_t;
inline constexpr ResourceId kInvalidResourceId = 0;

// Called when the manager evicts a resource. Runs *outside* the manager's
// lock; by the time it runs the registration is already gone, so the owner
// must only release its own memory and must not call back into the manager
// for this id.
using EvictCallback = std::function<void()>;

// Snapshot of accounting counters.
struct ResourceManagerStats {
  uint64_t total_bytes = 0;
  uint64_t pool_bytes[kNumPools] = {0, 0, 0};
  uint64_t resource_count = 0;
  uint64_t reactive_evictions = 0;
  uint64_t proactive_evictions = 0;
  uint64_t evicted_bytes = 0;
};

// SAP HANA-style memory manager (§5): tracks *logical resources* — a fully
// resident column registers as one resource, each loaded page of a page
// loadable column registers as its own resource with kPagedAttribute
// disposition.
//
// Eviction:
//  * Reactive: when total tracked bytes exceed the global budget, first
//    shrink paged-attribute pools down to their lower limits (plain LRU,
//    weight ignored), then evict general resources in descending t/w order.
//  * Proactive: a background sweeper shrinks any paged pool that exceeds its
//    upper limit down to its lower limit, even when plenty of memory is
//    available. It runs asynchronously and never blocks new loads.
//
// Pinned resources (pin_count > 0) and kNonSwappable resources are never
// evicted.
class ResourceManager {
 public:
  struct Limits {
    uint64_t lower = 0;  // shrink target
    uint64_t upper = 0;  // proactive trigger; 0 = unlimited
  };

  ResourceManager();
  ~ResourceManager();

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  // Registers a resource and runs reactive eviction if over budget. The
  // returned id is never kInvalidResourceId.
  ResourceId Register(std::string label, uint64_t bytes,
                      Disposition disposition, PoolId pool,
                      EvictCallback on_evict);

  // Registers a resource that is already pinned once (pin_count starts at
  // 1), so it can never be evicted between registration and the caller's
  // first pin. The caller owns one Unpin.
  ResourceId RegisterPinned(std::string label, uint64_t bytes,
                            Disposition disposition, PoolId pool,
                            EvictCallback on_evict);

  // Removes a resource without invoking its eviction callback (the owner is
  // releasing it voluntarily). Returns false if the id is unknown (already
  // evicted) — callers use this to detect eviction races.
  bool Unregister(ResourceId id);

  // Marks the resource recently used. No-op if already evicted. The LRU
  // reordering is deferred: the touch is recorded in a striped pending
  // buffer (no contention on the main mutex) and applied — in timestamp
  // order — before any victim selection.
  void Touch(ResourceId id);

  // Pins the resource against eviction. Returns false if the resource no
  // longer exists. Each successful Pin must be matched by Unpin.
  bool Pin(ResourceId id);
  void Unpin(ResourceId id);

  // Global memory budget in bytes; 0 = unlimited. Triggers reactive
  // eviction immediately if the new budget is already exceeded.
  void SetGlobalBudget(uint64_t bytes);

  // Lower/upper limits of a paged pool (§5). upper == 0 disables the
  // proactive sweep for that pool.
  void SetPoolLimits(PoolId pool, Limits limits);

  // Runs one synchronous proactive sweep (tests use this to avoid timing
  // dependence on the background thread).
  void SweepNow();

  ResourceManagerStats stats() const;
  uint64_t total_bytes() const;
  uint64_t pool_bytes(PoolId pool) const;

 private:
  struct Entry {
    ResourceId id = kInvalidResourceId;
    std::string label;
    uint64_t bytes = 0;
    Disposition disposition = Disposition::kTemporary;
    PoolId pool = PoolId::kGeneral;
    uint64_t last_touch = 0;
    uint32_t pin_count = 0;
    EvictCallback on_evict;
    std::list<ResourceId>::iterator lru_it;  // position in pool LRU list
  };

  // Collects victims (under lock) until pool usage <= target, plain LRU.
  // `proactive` only labels the eviction counters (sweeper vs. budget
  // pressure).
  void CollectPagedVictimsLocked(PoolId pool, uint64_t target, bool proactive,
                                 std::vector<EvictCallback>* callbacks);
  // Collects general-pool victims by descending t/w until total <= target.
  void CollectWeightedVictimsLocked(uint64_t target,
                                    std::vector<EvictCallback>* callbacks);
  ResourceId RegisterInternal(std::string label, uint64_t bytes,
                              Disposition disposition, PoolId pool,
                              EvictCallback on_evict, uint32_t initial_pins);
  // Appends one (id, stamp) touch to a stripe; flushes under mu_ once the
  // pending count crosses the threshold. Never called with mu_ held.
  void RecordTouch(ResourceId id, uint64_t stamp);
  // Drains every stripe and applies the touches in stamp order (so the LRU
  // lists end up exactly as if each Touch had spliced immediately). Must run
  // before any victim selection; stale ids (already evicted) are skipped —
  // resource ids are never reused.
  void FlushTouchesLocked();
  void RemoveEntryLocked(ResourceId id, bool count_as_eviction,
                         bool proactive);
  void ReactiveEvictLocked(std::vector<EvictCallback>* callbacks);
  void BackgroundSweeper();
  // Pushes total/pool byte levels and the resource count into the registry
  // gauges ("rm.bytes.*", "rm.resources").
  void UpdateGaugesLocked();

  // Hot-path touch buffering. Lock order: mu_ before stripe mutex; the
  // record path takes only the stripe mutex.
  static constexpr int kTouchStripes = 8;
  static constexpr size_t kTouchFlushThreshold = 64;
  struct TouchStripe {
    std::mutex mu;
    std::vector<std::pair<ResourceId, uint64_t>> pending;  // (id, stamp)
  };
  TouchStripe touch_stripes_[kTouchStripes];
  std::atomic<size_t> pending_touches_{0};

  mutable std::mutex mu_;
  std::condition_variable sweeper_cv_;
  std::unordered_map<ResourceId, Entry> entries_;
  // Per-pool LRU lists; front = least recently used.
  std::list<ResourceId> lru_[kNumPools];
  uint64_t pool_bytes_[kNumPools] = {0, 0, 0};
  uint64_t total_bytes_ = 0;
  uint64_t global_budget_ = 0;
  Limits pool_limits_[kNumPools];
  ResourceManagerStats counters_;
  std::atomic<ResourceId> next_id_{1};
  std::atomic<uint64_t> clock_{1};
  bool shutting_down_ = false;
  std::thread sweeper_;

  // Registry mirrors (resolved once; see DESIGN.md for the name scheme).
  obs::Counter* m_evict_reactive_;
  obs::Counter* m_evict_proactive_;
  obs::Counter* m_evicted_bytes_;
  obs::Histogram* m_sweep_duration_us_;
  obs::Gauge* m_bytes_total_;
  obs::Gauge* m_bytes_pool_[kNumPools];
  obs::Gauge* m_resources_;
};

// RAII pin. Obtained via PinnedResource::TryPin; unpins on destruction.
class PinnedResource {
 public:
  PinnedResource() = default;

  static PinnedResource TryPin(ResourceManager* rm, ResourceId id) {
    PinnedResource p;
    if (rm != nullptr && rm->Pin(id)) {
      p.rm_ = rm;
      p.id_ = id;
    }
    return p;
  }

  // Adopts a pin that already exists (RegisterPinned's initial pin) without
  // pinning again.
  static PinnedResource Adopt(ResourceManager* rm, ResourceId id) {
    PinnedResource p;
    p.rm_ = rm;
    p.id_ = id;
    return p;
  }

  PinnedResource(PinnedResource&& other) noexcept { *this = std::move(other); }
  PinnedResource& operator=(PinnedResource&& other) noexcept {
    if (this == &other) return *this;  // self-move must not drop the pin
    Release();
    rm_ = other.rm_;
    id_ = other.id_;
    other.rm_ = nullptr;
    other.id_ = kInvalidResourceId;
    return *this;
  }
  PinnedResource(const PinnedResource&) = delete;
  PinnedResource& operator=(const PinnedResource&) = delete;

  ~PinnedResource() { Release(); }

  bool valid() const { return rm_ != nullptr; }
  ResourceId id() const { return id_; }

  void Release() {
    if (rm_ != nullptr) {
      rm_->Unpin(id_);
      rm_ = nullptr;
      id_ = kInvalidResourceId;
    }
  }

 private:
  ResourceManager* rm_ = nullptr;
  ResourceId id_ = kInvalidResourceId;
};

}  // namespace payg

#endif  // PAYG_BUFFER_RESOURCE_MANAGER_H_
