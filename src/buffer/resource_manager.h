#ifndef PAYG_BUFFER_RESOURCE_MANAGER_H_
#define PAYG_BUFFER_RESOURCE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "buffer/disposition.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace payg {

using ResourceId = uint64_t;
inline constexpr ResourceId kInvalidResourceId = 0;

// Called when the manager evicts a resource. Runs *outside* the manager's
// lock; by the time it runs the registration is already gone, so the owner
// must only release its own memory and must not call back into the manager
// for this id.
using EvictCallback = std::function<void()>;

namespace buffer_detail {

// Dead flag of Entry::pin_state: set exactly once, by whoever removes the
// resource (evictor or voluntary Unregister). The low 63 bits count pins.
inline constexpr uint64_t kDeadFlag = 1ull << 63;
inline constexpr uint64_t kPinCountMask = kDeadFlag - 1;

// One registered resource. Shared ownership: the striped table holds one
// reference, every outstanding pin handle holds another, so a pin can be
// released (atomically, without any lock) even after the registration is
// gone.
//
// Field protection: `pin_state` is the lock-free pin/liveness word.
// `last_touch`, `lru_it` and `in_lru` are guarded by the manager's main
// mutex. Everything else is written once before the entry is published and
// read-only afterwards, except `on_evict`, which only the dead-flag winner
// moves out.
struct Entry {
  ResourceId id = kInvalidResourceId;
  std::string label;  // plain registrations
  // Paged registrations: label is conceptually `*label_prefix + "#" +
  // label_id`, kept unformatted so the page-load path never allocates.
  std::shared_ptr<const std::string> label_prefix;
  uint64_t label_id = 0;
  uint64_t bytes = 0;
  Disposition disposition = Disposition::kTemporary;
  PoolId pool = PoolId::kGeneral;
  std::atomic<uint64_t> pin_state{0};
  uint64_t last_touch = 0;
  EvictCallback on_evict;
  std::list<ResourceId>::iterator lru_it;
  bool in_lru = false;
};

}  // namespace buffer_detail

// Opaque reference to a registered resource. Pinning through a handle is a
// pure CAS loop on the entry's pin word — no mutex, no hash lookup — which
// is what lets the page-cache hit path scale with threads.
using ResourceHandle = std::shared_ptr<buffer_detail::Entry>;

// Snapshot of accounting counters.
struct ResourceManagerStats {
  uint64_t total_bytes = 0;
  uint64_t pool_bytes[kNumPools] = {0, 0, 0};
  uint64_t resource_count = 0;
  uint64_t reactive_evictions = 0;
  uint64_t proactive_evictions = 0;
  uint64_t evicted_bytes = 0;
};

// SAP HANA-style memory manager (§5): tracks *logical resources* — a fully
// resident column registers as one resource, each loaded page of a page
// loadable column registers as its own resource with kPagedAttribute
// disposition.
//
// Eviction:
//  * Reactive: when total tracked bytes exceed the global budget, first
//    shrink paged-attribute pools down to their lower limits (plain LRU,
//    weight ignored), then evict general resources in descending t/w order.
//  * Proactive: a background sweeper shrinks any paged pool that exceeds its
//    upper limit down to its lower limit, even when plenty of memory is
//    available. It runs asynchronously and never blocks new loads.
//
// Pinned resources (pin_count > 0) and kNonSwappable resources are never
// evicted.
//
// Concurrency layout (hot to cold):
//  * Pin/unpin through a ResourceHandle: lock-free CAS on the entry's pin
//    word. An entry is removed by CAS-ing the word from 0 to the dead flag,
//    so TryPin fails cleanly against a concurrently-chosen victim and a
//    victim is never chosen while pinned.
//  * Register/Unregister: the id→entry table is striped; registration and
//    voluntary release take one stripe mutex plus atomic byte counters —
//    never the main mutex (unless registration pushes the budget over and
//    has to run reactive eviction).
//  * Touch: recorded in striped pending buffers (latest stamp per id) and
//    applied to the LRU lists under the main mutex only right before victim
//    selection.
//  * Victim selection, LRU lists, eviction counters: main mutex.
// Lock order: mu_ → table stripe; mu_ → touch stripe. No path holds a
// stripe mutex while acquiring mu_.
class ResourceManager {
 public:
  struct Limits {
    uint64_t lower = 0;  // shrink target
    uint64_t upper = 0;  // proactive trigger; 0 = unlimited
  };

  ResourceManager();
  ~ResourceManager();

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  // Registers a resource and runs reactive eviction if over budget. The
  // returned id is never kInvalidResourceId.
  ResourceId Register(std::string label, uint64_t bytes,
                      Disposition disposition, PoolId pool,
                      EvictCallback on_evict);

  // Registers a resource that is already pinned once (pin_count starts at
  // 1), so it can never be evicted between registration and the caller's
  // first pin. The caller owns one Unpin. When `out_handle` is non-null it
  // receives the lock-free pin handle.
  ResourceId RegisterPinned(std::string label, uint64_t bytes,
                            Disposition disposition, PoolId pool,
                            EvictCallback on_evict,
                            ResourceHandle* out_handle = nullptr);

  // RegisterPinned for a page of a paged structure: the label is
  // `*label_prefix + "#" + label_id`, stored unformatted, so this path
  // performs no string allocation (the prefix is shared by every page of
  // one chain).
  ResourceId RegisterPinnedPage(std::shared_ptr<const std::string> label_prefix,
                                uint64_t label_id, uint64_t bytes,
                                Disposition disposition, PoolId pool,
                                EvictCallback on_evict,
                                ResourceHandle* out_handle = nullptr);

  // Removes a resource without invoking its eviction callback (the owner is
  // releasing it voluntarily). Returns false if the id is unknown (already
  // evicted) — callers use this to detect eviction races. Takes only the
  // entry's table stripe, never the main mutex.
  bool Unregister(ResourceId id);

  // Marks the resource recently used. No-op if already evicted. The LRU
  // reordering is deferred: the touch is recorded in a striped pending
  // buffer (latest stamp per id, no contention on the main mutex) and
  // applied — in timestamp order — before any victim selection.
  void Touch(ResourceId id);
  void Touch(const ResourceHandle& handle);

  // Pins the resource against eviction. Returns false if the resource no
  // longer exists. Each successful Pin must be matched by Unpin.
  bool Pin(ResourceId id);
  void Unpin(ResourceId id);

  // Resolves the lock-free pin handle of a live resource (one stripe
  // lookup); null if the id is unknown. Owners of long-lived registrations
  // resolve once and pin through the handle afterwards.
  ResourceHandle FindHandle(ResourceId id) const { return Find(id); }

  // Lock-free pin through a handle: CAS loop on the entry's pin word. Fails
  // iff the entry has been removed (evicted or unregistered). Does NOT
  // record a recency touch — hot paths that want one call Touch(handle).
  static bool TryPinHandle(const ResourceHandle& handle) {
    uint64_t cur = handle->pin_state.load(std::memory_order_acquire);
    while (true) {
      if (cur & buffer_detail::kDeadFlag) return false;
      if (handle->pin_state.compare_exchange_weak(
              cur, cur + 1, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        return true;
      }
    }
  }

  // Lock-free unpin. Safe after the registration is gone: the handle keeps
  // the entry alive and the count bits are independent of the dead flag.
  static void UnpinHandle(const ResourceHandle& handle) {
    const uint64_t prev =
        handle->pin_state.fetch_sub(1, std::memory_order_release);
    PAYG_ASSERT_MSG((prev & buffer_detail::kPinCountMask) != 0,
                    "unpin without pin");
    (void)prev;
  }

  // Global memory budget in bytes; 0 = unlimited. Triggers reactive
  // eviction immediately if the new budget is already exceeded.
  void SetGlobalBudget(uint64_t bytes);

  // Lower/upper limits of a paged pool (§5). upper == 0 disables the
  // proactive sweep for that pool.
  void SetPoolLimits(PoolId pool, Limits limits);

  // Runs one synchronous proactive sweep (tests use this to avoid timing
  // dependence on the background thread).
  void SweepNow();

  ResourceManagerStats stats() const;
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t pool_bytes(PoolId pool) const {
    return pool_bytes_[static_cast<int>(pool)].load(std::memory_order_relaxed);
  }

 private:
  using Entry = buffer_detail::Entry;

  // Striped id→entry table: the miss path (register/unregister) contends
  // only on one stripe.
  static constexpr int kTableStripes = 16;
  struct TableStripe {
    mutable Mutex mu;
    std::unordered_map<ResourceId, ResourceHandle> map GUARDED_BY(mu);
  };

  // Hot-path touch buffering. Only the latest stamp per id matters for the
  // final LRU order (every touch moves the id to the back), so the buffer
  // is a per-stripe map and its size is bounded by the number of live ids.
  static constexpr int kTouchStripes = 16;
  struct TouchStripe {
    Mutex mu;
    // id → latest stamp
    std::unordered_map<ResourceId, uint64_t> pending GUARDED_BY(mu);
  };

  ResourceHandle Find(ResourceId id) const {
    const TableStripe& stripe = table_stripes_[id % kTableStripes];
    MutexLock lock(stripe.mu);
    auto it = stripe.map.find(id);
    return it == stripe.map.end() ? nullptr : it->second;
  }
  void EraseFromTable(ResourceId id) {
    TableStripe& stripe = table_stripes_[id % kTableStripes];
    MutexLock lock(stripe.mu);
    stripe.map.erase(id);
  }

  // Publishes a fully-populated entry (label fields set by the caller):
  // assigns the id, inserts into the table stripe, records the deferred LRU
  // insert, and runs reactive eviction if the new bytes push the total over
  // budget.
  ResourceId RegisterInternal(ResourceHandle entry, uint32_t initial_pins,
                              ResourceHandle* out_handle);
  // Appends one (id, stamp) touch to a stripe. Never takes the main mutex.
  void RecordTouch(ResourceId id, uint64_t stamp);
  // Drains every stripe and applies the touches in stamp order (so the LRU
  // lists end up exactly as if each Touch had spliced immediately). Also
  // performs the deferred *insertion* of newly registered entries into
  // their LRU list. Must run before any victim selection; stale ids
  // (already removed) are skipped — resource ids are never reused.
  void FlushTouchesLocked() REQUIRES(mu_);
  // Removes a dead-flagged entry's accounting (bytes, table, LRU node if
  // still linked) and bumps eviction counters when asked. The caller has
  // already won the dead flag.
  void FinishRemovalLocked(const ResourceHandle& e, bool count_as_eviction,
                           bool proactive) REQUIRES(mu_);
  // Collects victims (under lock) until pool usage <= target, plain LRU.
  // `proactive` only labels the eviction counters (sweeper vs. budget
  // pressure).
  void CollectPagedVictimsLocked(PoolId pool, uint64_t target, bool proactive,
                                 std::vector<EvictCallback>* callbacks)
      REQUIRES(mu_);
  // Collects general-pool victims by descending t/w until total <= target.
  void CollectWeightedVictimsLocked(uint64_t target,
                                    std::vector<EvictCallback>* callbacks)
      REQUIRES(mu_);
  void ReactiveEvictLocked(std::vector<EvictCallback>* callbacks)
      REQUIRES(mu_);
  // Drops LRU nodes whose entry is gone (Unregister defers this cleanup).
  void PruneDeadLruNodesLocked() REQUIRES(mu_);
  void BackgroundSweeper();
  // Pushes total/pool byte levels and the resource count into the registry
  // gauges ("rm.bytes.*", "rm.resources"). Gauges are statistics: written
  // from atomic counters without holding any lock.
  void UpdateGauges();

  TableStripe table_stripes_[kTableStripes];
  TouchStripe touch_stripes_[kTouchStripes];

  // Byte/count accounting: atomics, so the register/unregister path needs
  // no lock and the budget check is one relaxed load.
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> pool_bytes_[kNumPools];
  std::atomic<uint64_t> resource_count_{0};
  std::atomic<uint64_t> global_budget_{0};
  struct AtomicLimits {
    std::atomic<uint64_t> lower{0};
    std::atomic<uint64_t> upper{0};
  };
  AtomicLimits pool_limits_[kNumPools];
  // Unregister leaves its LRU node behind (list surgery needs mu_).
  // Counts unregisters since the last prune — an upper bound on stale
  // nodes; the sweeper prunes once enough accumulate.
  std::atomic<uint64_t> dead_lru_nodes_{0};
  static constexpr uint64_t kDeadLruPruneThreshold = 1024;

  // Lock order (DESIGN.md §8): mu_ → table stripe, mu_ → touch stripe; no
  // path acquires mu_ while holding a stripe. Entry's mu_-guarded fields
  // (last_touch, lru_it, in_lru) cannot carry GUARDED_BY — Entry has no
  // back-pointer to its manager — see DESIGN.md S21.
  mutable Mutex mu_;
  CondVar sweeper_cv_;
  // Per-pool LRU lists; front = least recently used. Membership lags
  // registration (applied at flush) and removal (stale nodes pruned during
  // walks); victim passes always flush first, so every live entry is
  // visible to eviction.
  std::list<ResourceId> lru_[kNumPools] GUARDED_BY(mu_);
  ResourceManagerStats counters_ GUARDED_BY(mu_);  // eviction counters
  std::atomic<ResourceId> next_id_{1};
  std::atomic<uint64_t> clock_{1};
  bool shutting_down_ GUARDED_BY(mu_) = false;
  std::thread sweeper_;

  // Registry mirrors (resolved once; see DESIGN.md for the name scheme).
  obs::Counter* m_evict_reactive_;
  obs::Counter* m_evict_proactive_;
  obs::Counter* m_evicted_bytes_;
  obs::Histogram* m_sweep_duration_us_;
  obs::Gauge* m_bytes_total_;
  obs::Gauge* m_bytes_pool_[kNumPools];
  obs::Gauge* m_resources_;
};

// RAII pin. Obtained via PinnedResource::TryPin; unpins on destruction.
// Holds the resource's handle, so release is lock-free and remains safe
// after the registration is gone.
class PinnedResource {
 public:
  PinnedResource() = default;

  static PinnedResource TryPin(ResourceManager* rm, ResourceId id) {
    PinnedResource p;
    if (rm == nullptr) return p;
    ResourceHandle h = rm->FindHandle(id);
    if (h != nullptr && ResourceManager::TryPinHandle(h)) {
      rm->Touch(h);  // pins count as recency, as they always have
      p.handle_ = std::move(h);
    }
    return p;
  }

  // Lock-free variant for callers that already hold the handle.
  static PinnedResource TryPin(ResourceHandle handle) {
    PinnedResource p;
    if (handle != nullptr && ResourceManager::TryPinHandle(handle)) {
      p.handle_ = std::move(handle);
    }
    return p;
  }

  // Adopts a pin that already exists (RegisterPinned's initial pin) without
  // pinning again.
  static PinnedResource Adopt(ResourceManager* rm, ResourceId id) {
    PinnedResource p;
    p.handle_ = rm->FindHandle(id);
    PAYG_ASSERT(p.handle_ != nullptr);
    return p;
  }
  static PinnedResource Adopt(ResourceHandle handle) {
    PinnedResource p;
    p.handle_ = std::move(handle);
    return p;
  }

  PinnedResource(PinnedResource&& other) noexcept { *this = std::move(other); }
  PinnedResource& operator=(PinnedResource&& other) noexcept {
    if (this == &other) return *this;  // self-move must not drop the pin
    Release();
    handle_ = std::move(other.handle_);
    return *this;
  }
  PinnedResource(const PinnedResource&) = delete;
  PinnedResource& operator=(const PinnedResource&) = delete;

  ~PinnedResource() { Release(); }

  bool valid() const { return handle_ != nullptr; }
  ResourceId id() const {
    return handle_ == nullptr ? kInvalidResourceId : handle_->id;
  }

  void Release() {
    if (handle_ != nullptr) {
      ResourceManager::UnpinHandle(handle_);
      handle_.reset();
    }
  }

 private:
  ResourceHandle handle_;
};

}  // namespace payg

#endif  // PAYG_BUFFER_RESOURCE_MANAGER_H_
