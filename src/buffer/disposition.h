#ifndef PAYG_BUFFER_DISPOSITION_H_
#define PAYG_BUFFER_DISPOSITION_H_

#include <cstdint>
#include <string_view>

namespace payg {

// Cache-eviction policy category for a registered resource (§5). The
// resource manager evicts unused resources in descending order of t/w where
// t is the time since last touch and w the disposition weight — so a small
// weight means "evict me sooner".
enum class Disposition : uint8_t {
  kTemporary = 0,      // drop as soon as unused (intermediate results)
  kShortTerm = 1,      // delta fragments, transient helpers
  kMidTerm = 2,        // fully resident main structures (default columns)
  kLongTerm = 3,       // performance-critical pinned-by-policy columns
  kNonSwappable = 4,   // can never be unloaded
  kPagedAttribute = 5, // pages of page loadable columns; governed by the
                       // paged pool's lower/upper limits, weight ignored
};

// Weight w used in the t/w eviction ordering. kNonSwappable and
// kPagedAttribute never go through this ordering but get a value for
// completeness.
inline double DispositionWeight(Disposition d) {
  switch (d) {
    case Disposition::kTemporary:
      return 1.0;
    case Disposition::kShortTerm:
      return 4.0;
    case Disposition::kMidTerm:
      return 16.0;
    case Disposition::kLongTerm:
      return 64.0;
    case Disposition::kNonSwappable:
      return 1e18;
    case Disposition::kPagedAttribute:
      return 8.0;
  }
  return 1.0;
}

inline std::string_view DispositionName(Disposition d) {
  switch (d) {
    case Disposition::kTemporary:
      return "temporary";
    case Disposition::kShortTerm:
      return "short_term";
    case Disposition::kMidTerm:
      return "mid_term";
    case Disposition::kLongTerm:
      return "long_term";
    case Disposition::kNonSwappable:
      return "non_swappable";
    case Disposition::kPagedAttribute:
      return "paged_attribute";
  }
  return "unknown";
}

// Which pool a paged-attribute resource belongs to. Cold partitions load
// their pages into a pool separate from other database objects (§4.1).
enum class PoolId : uint8_t {
  kGeneral = 0,
  kPagedPool = 1,
  kColdPagedPool = 2,
};

inline constexpr int kNumPools = 3;

}  // namespace payg

#endif  // PAYG_BUFFER_DISPOSITION_H_
