#include "buffer/resource_manager.h"

#include <algorithm>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace payg {

ResourceManager::ResourceManager() {
  auto& reg = obs::MetricsRegistry::Global();
  m_evict_reactive_ = reg.counter("rm.evictions.reactive");
  m_evict_proactive_ = reg.counter("rm.evictions.proactive");
  m_evicted_bytes_ = reg.counter("rm.evicted.bytes");
  m_sweep_duration_us_ = reg.histogram("rm.sweep.duration_us");
  m_bytes_total_ = reg.gauge("rm.bytes.total");
  m_bytes_pool_[static_cast<int>(PoolId::kGeneral)] =
      reg.gauge("rm.bytes.general");
  m_bytes_pool_[static_cast<int>(PoolId::kPagedPool)] =
      reg.gauge("rm.bytes.paged");
  m_bytes_pool_[static_cast<int>(PoolId::kColdPagedPool)] =
      reg.gauge("rm.bytes.cold_paged");
  m_resources_ = reg.gauge("rm.resources");
  sweeper_ = std::thread([this] { BackgroundSweeper(); });
}

void ResourceManager::UpdateGaugesLocked() {
  // Gauges show the level of *this* manager; with several stores in one
  // process the last writer wins, which is fine for the single-store
  // benchmarks these feed. Counters above aggregate across managers.
  m_bytes_total_->Set(static_cast<int64_t>(total_bytes_));
  for (int p = 0; p < kNumPools; ++p) {
    m_bytes_pool_[p]->Set(static_cast<int64_t>(pool_bytes_[p]));
  }
  m_resources_->Set(static_cast<int64_t>(entries_.size()));
}

ResourceManager::~ResourceManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  sweeper_cv_.notify_all();
  sweeper_.join();
}

ResourceId ResourceManager::Register(std::string label, uint64_t bytes,
                                     Disposition disposition, PoolId pool,
                                     EvictCallback on_evict) {
  return RegisterInternal(std::move(label), bytes, disposition, pool,
                          std::move(on_evict), /*initial_pins=*/0);
}

ResourceId ResourceManager::RegisterPinned(std::string label, uint64_t bytes,
                                           Disposition disposition,
                                           PoolId pool,
                                           EvictCallback on_evict) {
  return RegisterInternal(std::move(label), bytes, disposition, pool,
                          std::move(on_evict), /*initial_pins=*/1);
}

ResourceId ResourceManager::RegisterInternal(std::string label, uint64_t bytes,
                                             Disposition disposition,
                                             PoolId pool,
                                             EvictCallback on_evict,
                                             uint32_t initial_pins) {
  ResourceId id = next_id_.fetch_add(1);
  std::vector<EvictCallback> callbacks;
  bool wake_sweeper = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Entry e;
    e.id = id;
    e.label = std::move(label);
    e.bytes = bytes;
    e.disposition = disposition;
    e.pool = pool;
    e.last_touch = clock_.fetch_add(1);
    e.pin_count = initial_pins;
    e.on_evict = std::move(on_evict);
    auto pool_idx = static_cast<int>(pool);
    lru_[pool_idx].push_back(id);
    e.lru_it = std::prev(lru_[pool_idx].end());
    pool_bytes_[pool_idx] += bytes;
    total_bytes_ += bytes;
    entries_.emplace(id, std::move(e));
    counters_.resource_count = entries_.size();

    ReactiveEvictLocked(&callbacks);
    UpdateGaugesLocked();

    const Limits& lim = pool_limits_[pool_idx];
    if (lim.upper != 0 && pool_bytes_[pool_idx] > lim.upper) {
      wake_sweeper = true;
    }
  }
  for (auto& cb : callbacks) {
    if (cb) cb();
  }
  // The proactive sweep is asynchronous by design: loading new pages is
  // never blocked on it (§5), so the pool may transiently exceed the upper
  // limit.
  if (wake_sweeper) sweeper_cv_.notify_one();
  return id;
}

bool ResourceManager::Unregister(ResourceId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  RemoveEntryLocked(id, /*count_as_eviction=*/false, /*proactive=*/false);
  return true;
}

void ResourceManager::Touch(ResourceId id) {
  // Hot path: no main-mutex acquisition. The LRU splice happens lazily in
  // FlushTouchesLocked before the next victim selection.
  RecordTouch(id, clock_.fetch_add(1));
}

bool ResourceManager::Pin(ResourceId id) {
  uint64_t stamp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return false;
    Entry& e = it->second;
    ++e.pin_count;
    stamp = clock_.fetch_add(1);
    e.last_touch = stamp;
  }
  // The recency splice is deferred like Touch, keeping the mu_ critical
  // section to a hash lookup + counter bump on the hot pin path.
  RecordTouch(id, stamp);
  return true;
}

void ResourceManager::RecordTouch(ResourceId id, uint64_t stamp) {
  size_t pending;
  {
    TouchStripe& stripe = touch_stripes_[id % kTouchStripes];
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.pending.emplace_back(id, stamp);
    pending = pending_touches_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  if (pending >= kTouchFlushThreshold) {
    std::lock_guard<std::mutex> lock(mu_);
    FlushTouchesLocked();
  }
}

void ResourceManager::FlushTouchesLocked() {
  std::vector<std::pair<ResourceId, uint64_t>> pending;
  for (TouchStripe& stripe : touch_stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    pending.insert(pending.end(), stripe.pending.begin(),
                   stripe.pending.end());
    stripe.pending.clear();
  }
  if (pending.empty()) return;
  pending_touches_.fetch_sub(pending.size(), std::memory_order_relaxed);
  // Apply in stamp order so the lists end up exactly as if every Touch/Pin
  // had spliced under mu_ at the moment it happened.
  std::sort(pending.begin(), pending.end(),
            [](const std::pair<ResourceId, uint64_t>& a,
               const std::pair<ResourceId, uint64_t>& b) {
              return a.second < b.second;
            });
  for (const auto& [id, stamp] : pending) {
    auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // evicted meanwhile; ids never reused
    Entry& e = it->second;
    if (stamp > e.last_touch) e.last_touch = stamp;
    auto pool_idx = static_cast<int>(e.pool);
    lru_[pool_idx].erase(e.lru_it);
    lru_[pool_idx].push_back(id);
    e.lru_it = std::prev(lru_[pool_idx].end());
  }
}

void ResourceManager::Unpin(ResourceId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  PAYG_ASSERT_MSG(it->second.pin_count > 0, "unpin without pin");
  --it->second.pin_count;
}

void ResourceManager::SetGlobalBudget(uint64_t bytes) {
  std::vector<EvictCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    global_budget_ = bytes;
    ReactiveEvictLocked(&callbacks);
  }
  for (auto& cb : callbacks) {
    if (cb) cb();
  }
}

void ResourceManager::SetPoolLimits(PoolId pool, Limits limits) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pool_limits_[static_cast<int>(pool)] = limits;
  }
  sweeper_cv_.notify_one();
}

void ResourceManager::SweepNow() {
  obs::TraceSpan span("buffer", "sweep");
  Stopwatch timer;
  std::vector<EvictCallback> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    FlushTouchesLocked();
    for (int p = 0; p < kNumPools; ++p) {
      const Limits& lim = pool_limits_[p];
      if (lim.upper != 0 && pool_bytes_[p] > lim.upper) {
        CollectPagedVictimsLocked(static_cast<PoolId>(p), lim.lower,
                                  /*proactive=*/true, &callbacks);
      }
    }
  }
  for (auto& cb : callbacks) {
    if (cb) cb();
  }
  m_sweep_duration_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
}

ResourceManagerStats ResourceManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResourceManagerStats s = counters_;
  s.total_bytes = total_bytes_;
  for (int p = 0; p < kNumPools; ++p) s.pool_bytes[p] = pool_bytes_[p];
  s.resource_count = entries_.size();
  return s;
}

uint64_t ResourceManager::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

uint64_t ResourceManager::pool_bytes(PoolId pool) const {
  std::lock_guard<std::mutex> lock(mu_);
  return pool_bytes_[static_cast<int>(pool)];
}

void ResourceManager::RemoveEntryLocked(ResourceId id, bool count_as_eviction,
                                        bool proactive) {
  auto it = entries_.find(id);
  PAYG_ASSERT(it != entries_.end());
  Entry& e = it->second;
  auto pool_idx = static_cast<int>(e.pool);
  lru_[pool_idx].erase(e.lru_it);
  pool_bytes_[pool_idx] -= e.bytes;
  total_bytes_ -= e.bytes;
  if (count_as_eviction) {
    counters_.evicted_bytes += e.bytes;
    m_evicted_bytes_->Add(e.bytes);
    if (proactive) {
      ++counters_.proactive_evictions;
      m_evict_proactive_->Inc();
    } else {
      ++counters_.reactive_evictions;
      m_evict_reactive_->Inc();
    }
  }
  entries_.erase(it);
  counters_.resource_count = entries_.size();
  UpdateGaugesLocked();
}

void ResourceManager::CollectPagedVictimsLocked(
    PoolId pool, uint64_t target, bool proactive,
    std::vector<EvictCallback>* callbacks) {
  auto pool_idx = static_cast<int>(pool);
  // Plain LRU front-to-back; disposition weight deliberately plays no role
  // for paged-attribute resources (§5).
  auto it = lru_[pool_idx].begin();
  while (it != lru_[pool_idx].end() && pool_bytes_[pool_idx] > target) {
    ResourceId id = *it;
    ++it;  // advance before possibly erasing
    Entry& e = entries_.at(id);
    if (e.pin_count > 0 || e.disposition == Disposition::kNonSwappable) {
      continue;
    }
    callbacks->push_back(std::move(e.on_evict));
    RemoveEntryLocked(id, /*count_as_eviction=*/true, proactive);
  }
}

void ResourceManager::CollectWeightedVictimsLocked(
    uint64_t target, std::vector<EvictCallback>* callbacks) {
  // Rank unpinned, swappable general-pool resources by descending t/w.
  struct Candidate {
    double score;
    ResourceId id;
  };
  const uint64_t now = clock_.load();
  std::vector<Candidate> candidates;
  for (ResourceId id : lru_[static_cast<int>(PoolId::kGeneral)]) {
    const Entry& e = entries_.at(id);
    if (e.pin_count > 0 || e.disposition == Disposition::kNonSwappable) {
      continue;
    }
    double t = static_cast<double>(now - e.last_touch);
    candidates.push_back({t / DispositionWeight(e.disposition), id});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  for (const Candidate& c : candidates) {
    if (total_bytes_ <= target) break;
    Entry& e = entries_.at(c.id);
    callbacks->push_back(std::move(e.on_evict));
    RemoveEntryLocked(c.id, /*count_as_eviction=*/true, /*proactive=*/false);
  }
}

void ResourceManager::ReactiveEvictLocked(
    std::vector<EvictCallback>* callbacks) {
  if (global_budget_ == 0 || total_bytes_ <= global_budget_) return;
  // Deferred touches must land before picking victims or the LRU order
  // would ignore recent activity.
  FlushTouchesLocked();
  // Low-memory situation: paged-attribute resources are unloaded first, down
  // to each pool's lower limit, before touching anything else (§5).
  for (int p = 0; p < kNumPools; ++p) {
    if (total_bytes_ <= global_budget_) break;
    if (p == static_cast<int>(PoolId::kGeneral)) continue;
    // These count as reactive, not proactive: budget pressure, not sweeper.
    CollectPagedVictimsLocked(static_cast<PoolId>(p), pool_limits_[p].lower,
                              /*proactive=*/false, callbacks);
  }
  if (total_bytes_ > global_budget_) {
    CollectWeightedVictimsLocked(global_budget_, callbacks);
  }
}

void ResourceManager::BackgroundSweeper() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutting_down_) {
    sweeper_cv_.wait_for(lock, std::chrono::milliseconds(20));
    if (shutting_down_) break;
    const auto sweep_start = std::chrono::steady_clock::now();
    std::vector<EvictCallback> callbacks;
    FlushTouchesLocked();
    for (int p = 0; p < kNumPools; ++p) {
      const Limits& lim = pool_limits_[p];
      if (lim.upper != 0 && pool_bytes_[p] > lim.upper) {
        CollectPagedVictimsLocked(static_cast<PoolId>(p), lim.lower,
                                  /*proactive=*/true, &callbacks);
      }
    }
    if (!callbacks.empty()) {
      lock.unlock();
      for (auto& cb : callbacks) {
        if (cb) cb();
      }
      // Only sweeps that actually evicted register a duration/span — the
      // idle 20ms ticks would otherwise drown the histogram in zeros.
      m_sweep_duration_us_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - sweep_start)
              .count()));
      if (obs::Tracer::enabled()) {
        obs::Tracer::Global().RecordSpan("buffer", "sweep", sweep_start,
                                         callbacks.size());
      }
      lock.lock();
    }
  }
}

}  // namespace payg
