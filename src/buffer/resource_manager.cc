#include "buffer/resource_manager.h"

#include <algorithm>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "obs/trace.h"

namespace payg {

using buffer_detail::kDeadFlag;

ResourceManager::ResourceManager() {
  for (auto& pb : pool_bytes_) pb.store(0, std::memory_order_relaxed);
  auto& reg = obs::MetricsRegistry::Global();
  m_evict_reactive_ = reg.counter("rm.evictions.reactive");
  m_evict_proactive_ = reg.counter("rm.evictions.proactive");
  m_evicted_bytes_ = reg.counter("rm.evicted.bytes");
  m_sweep_duration_us_ = reg.histogram("rm.sweep.duration_us");
  m_bytes_total_ = reg.gauge("rm.bytes.total");
  m_bytes_pool_[static_cast<int>(PoolId::kGeneral)] =
      reg.gauge("rm.bytes.general");
  m_bytes_pool_[static_cast<int>(PoolId::kPagedPool)] =
      reg.gauge("rm.bytes.paged");
  m_bytes_pool_[static_cast<int>(PoolId::kColdPagedPool)] =
      reg.gauge("rm.bytes.cold_paged");
  m_resources_ = reg.gauge("rm.resources");
  sweeper_ = std::thread([this] { BackgroundSweeper(); });
}

void ResourceManager::UpdateGauges() {
  // Gauges show the level of *this* manager; with several stores in one
  // process the last writer wins, which is fine for the single-store
  // benchmarks these feed. Counters aggregate across managers. Written from
  // the atomic accounting without any lock — gauges are statistics.
  m_bytes_total_->Set(
      static_cast<int64_t>(total_bytes_.load(std::memory_order_relaxed)));
  for (int p = 0; p < kNumPools; ++p) {
    m_bytes_pool_[p]->Set(
        static_cast<int64_t>(pool_bytes_[p].load(std::memory_order_relaxed)));
  }
  m_resources_->Set(
      static_cast<int64_t>(resource_count_.load(std::memory_order_relaxed)));
}

ResourceManager::~ResourceManager() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  sweeper_cv_.NotifyAll();
  sweeper_.join();
}

ResourceId ResourceManager::Register(std::string label, uint64_t bytes,
                                     Disposition disposition, PoolId pool,
                                     EvictCallback on_evict) {
  auto e = std::make_shared<Entry>();
  e->label = std::move(label);
  e->bytes = bytes;
  e->disposition = disposition;
  e->pool = pool;
  e->on_evict = std::move(on_evict);
  return RegisterInternal(std::move(e), /*initial_pins=*/0, nullptr);
}

ResourceId ResourceManager::RegisterPinned(std::string label, uint64_t bytes,
                                           Disposition disposition,
                                           PoolId pool, EvictCallback on_evict,
                                           ResourceHandle* out_handle) {
  auto e = std::make_shared<Entry>();
  e->label = std::move(label);
  e->bytes = bytes;
  e->disposition = disposition;
  e->pool = pool;
  e->on_evict = std::move(on_evict);
  return RegisterInternal(std::move(e), /*initial_pins=*/1, out_handle);
}

ResourceId ResourceManager::RegisterPinnedPage(
    std::shared_ptr<const std::string> label_prefix, uint64_t label_id,
    uint64_t bytes, Disposition disposition, PoolId pool,
    EvictCallback on_evict, ResourceHandle* out_handle) {
  auto e = std::make_shared<Entry>();
  e->label_prefix = std::move(label_prefix);
  e->label_id = label_id;
  e->bytes = bytes;
  e->disposition = disposition;
  e->pool = pool;
  e->on_evict = std::move(on_evict);
  return RegisterInternal(std::move(e), /*initial_pins=*/1, out_handle);
}

ResourceId ResourceManager::RegisterInternal(ResourceHandle entry,
                                             uint32_t initial_pins,
                                             ResourceHandle* out_handle) {
  const ResourceId id = next_id_.fetch_add(1);
  const uint64_t stamp = clock_.fetch_add(1);
  entry->id = id;
  entry->last_touch = stamp;
  entry->pin_state.store(initial_pins, std::memory_order_relaxed);
  const uint64_t bytes = entry->bytes;
  const auto pool_idx = static_cast<int>(entry->pool);
  if (out_handle != nullptr) *out_handle = entry;

  {
    TableStripe& stripe = table_stripes_[id % kTableStripes];
    MutexLock lock(stripe.mu);
    stripe.map.emplace(id, std::move(entry));
  }
  pool_bytes_[pool_idx].fetch_add(bytes, std::memory_order_relaxed);
  const uint64_t total =
      total_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  resource_count_.fetch_add(1, std::memory_order_relaxed);
  // The deferred LRU insert: the entry reaches its pool's list at the next
  // flush, which every victim pass performs first.
  RecordTouch(id, stamp);
  UpdateGauges();

  const uint64_t budget = global_budget_.load(std::memory_order_relaxed);
  if (budget != 0 && total > budget) {
    std::vector<EvictCallback> callbacks;
    {
      MutexLock lock(mu_);
      ReactiveEvictLocked(&callbacks);
    }
    for (auto& cb : callbacks) {
      if (cb) cb();
    }
  }
  // The proactive sweep is asynchronous by design: loading new pages is
  // never blocked on it (§5), so the pool may transiently exceed the upper
  // limit.
  const uint64_t upper =
      pool_limits_[pool_idx].upper.load(std::memory_order_relaxed);
  if (upper != 0 &&
      pool_bytes_[pool_idx].load(std::memory_order_relaxed) > upper) {
    sweeper_cv_.NotifyOne();
  }
  return id;
}

bool ResourceManager::Unregister(ResourceId id) {
  ResourceHandle e = Find(id);
  if (e == nullptr) return false;
  // Winner of the dead flag owns the removal; a concurrent evictor's
  // CAS(0 → dead) fails against either our flag or an outstanding pin.
  const uint64_t prev =
      e->pin_state.fetch_or(kDeadFlag, std::memory_order_acq_rel);
  if (prev & kDeadFlag) return false;  // eviction got there first
  EraseFromTable(id);
  pool_bytes_[static_cast<int>(e->pool)].fetch_sub(e->bytes,
                                                   std::memory_order_relaxed);
  total_bytes_.fetch_sub(e->bytes, std::memory_order_relaxed);
  resource_count_.fetch_sub(1, std::memory_order_relaxed);
  // The LRU node (if the entry ever reached the list) stays behind; list
  // surgery needs mu_ and this path must not take it. Victim walks skip and
  // erase stale nodes; the sweeper prunes if they pile up without eviction
  // pressure.
  dead_lru_nodes_.fetch_add(1, std::memory_order_relaxed);
  UpdateGauges();
  return true;
}

void ResourceManager::Touch(ResourceId id) {
  // Hot path: no main-mutex acquisition. The LRU splice happens lazily in
  // FlushTouchesLocked before the next victim selection.
  RecordTouch(id, clock_.fetch_add(1));
}

void ResourceManager::Touch(const ResourceHandle& handle) {
  RecordTouch(handle->id, clock_.fetch_add(1));
}

bool ResourceManager::Pin(ResourceId id) {
  ResourceHandle e = Find(id);
  if (e == nullptr) return false;
  if (!TryPinHandle(e)) return false;
  // The recency splice is deferred like Touch, keeping the pin path free of
  // the main mutex.
  RecordTouch(id, clock_.fetch_add(1));
  return true;
}

void ResourceManager::Unpin(ResourceId id) {
  ResourceHandle e = Find(id);
  if (e == nullptr) return;  // already evicted/unregistered: pin died with it
  UnpinHandle(e);
}

void ResourceManager::RecordTouch(ResourceId id, uint64_t stamp) {
  TouchStripe& stripe = touch_stripes_[id % kTouchStripes];
  MutexLock lock(stripe.mu);
  uint64_t& slot = stripe.pending[id];
  if (stamp > slot) slot = stamp;
}

void ResourceManager::FlushTouchesLocked() {
  std::vector<std::pair<ResourceId, uint64_t>> pending;
  for (TouchStripe& stripe : touch_stripes_) {
    MutexLock lock(stripe.mu);
    pending.insert(pending.end(), stripe.pending.begin(),
                   stripe.pending.end());
    stripe.pending.clear();
  }
  if (pending.empty()) return;
  // Apply in stamp order so the lists end up exactly as if every Touch/Pin
  // had spliced under mu_ at the moment it happened (only the latest touch
  // of an id affects its final position, and the buffer keeps exactly
  // that).
  std::sort(pending.begin(), pending.end(),
            [](const std::pair<ResourceId, uint64_t>& a,
               const std::pair<ResourceId, uint64_t>& b) {
              return a.second < b.second;
            });
  for (const auto& [id, stamp] : pending) {
    ResourceHandle e = Find(id);  // mu_ → table stripe: allowed order
    if (e == nullptr) continue;  // removed meanwhile; ids never reused
    if (stamp > e->last_touch) e->last_touch = stamp;
    auto pool_idx = static_cast<int>(e->pool);
    if (e->in_lru) {
      lru_[pool_idx].erase(e->lru_it);
    }
    lru_[pool_idx].push_back(id);
    e->lru_it = std::prev(lru_[pool_idx].end());
    e->in_lru = true;
  }
}

void ResourceManager::SetGlobalBudget(uint64_t bytes) {
  global_budget_.store(bytes, std::memory_order_relaxed);
  std::vector<EvictCallback> callbacks;
  {
    MutexLock lock(mu_);
    ReactiveEvictLocked(&callbacks);
  }
  for (auto& cb : callbacks) {
    if (cb) cb();
  }
}

void ResourceManager::SetPoolLimits(PoolId pool, Limits limits) {
  auto& lim = pool_limits_[static_cast<int>(pool)];
  lim.lower.store(limits.lower, std::memory_order_relaxed);
  lim.upper.store(limits.upper, std::memory_order_relaxed);
  sweeper_cv_.NotifyOne();
}

void ResourceManager::SweepNow() {
  obs::TraceSpan span("buffer", "sweep");
  Stopwatch timer;
  std::vector<EvictCallback> callbacks;
  {
    MutexLock lock(mu_);
    FlushTouchesLocked();
    PruneDeadLruNodesLocked();
    for (int p = 0; p < kNumPools; ++p) {
      const uint64_t upper =
          pool_limits_[p].upper.load(std::memory_order_relaxed);
      if (upper != 0 &&
          pool_bytes_[p].load(std::memory_order_relaxed) > upper) {
        CollectPagedVictimsLocked(
            static_cast<PoolId>(p),
            pool_limits_[p].lower.load(std::memory_order_relaxed),
            /*proactive=*/true, &callbacks);
      }
    }
  }
  for (auto& cb : callbacks) {
    if (cb) cb();
  }
  m_sweep_duration_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
}

ResourceManagerStats ResourceManager::stats() const {
  ResourceManagerStats s;
  {
    MutexLock lock(mu_);
    s = counters_;
  }
  s.total_bytes = total_bytes_.load(std::memory_order_relaxed);
  for (int p = 0; p < kNumPools; ++p) {
    s.pool_bytes[p] = pool_bytes_[p].load(std::memory_order_relaxed);
  }
  s.resource_count = resource_count_.load(std::memory_order_relaxed);
  return s;
}

void ResourceManager::FinishRemovalLocked(const ResourceHandle& e,
                                          bool count_as_eviction,
                                          bool proactive) {
  auto pool_idx = static_cast<int>(e->pool);
  if (e->in_lru) {
    lru_[pool_idx].erase(e->lru_it);
    e->in_lru = false;
  }
  EraseFromTable(e->id);  // mu_ → table stripe: allowed order
  pool_bytes_[pool_idx].fetch_sub(e->bytes, std::memory_order_relaxed);
  total_bytes_.fetch_sub(e->bytes, std::memory_order_relaxed);
  resource_count_.fetch_sub(1, std::memory_order_relaxed);
  if (count_as_eviction) {
    counters_.evicted_bytes += e->bytes;
    m_evicted_bytes_->Add(e->bytes);
    if (proactive) {
      ++counters_.proactive_evictions;
      m_evict_proactive_->Inc();
    } else {
      ++counters_.reactive_evictions;
      m_evict_reactive_->Inc();
    }
  }
  UpdateGauges();
}

void ResourceManager::CollectPagedVictimsLocked(
    PoolId pool, uint64_t target, bool proactive,
    std::vector<EvictCallback>* callbacks) {
  auto pool_idx = static_cast<int>(pool);
  // Plain LRU front-to-back; disposition weight deliberately plays no role
  // for paged-attribute resources (§5).
  auto it = lru_[pool_idx].begin();
  while (it != lru_[pool_idx].end() &&
         pool_bytes_[pool_idx].load(std::memory_order_relaxed) > target) {
    const ResourceId id = *it;
    ResourceHandle e = Find(id);
    if (e == nullptr) {  // unregistered; the node outlived the entry
      it = lru_[pool_idx].erase(it);
      continue;
    }
    if (e->disposition == Disposition::kNonSwappable) {
      ++it;
      continue;
    }
    // Only an unpinned, live entry may become a victim, and winning the
    // dead flag is what makes us the victim's sole remover: a concurrent
    // TryPin fails against the flag, a concurrent pin beats our CAS.
    uint64_t expected = 0;
    if (!e->pin_state.compare_exchange_strong(expected, kDeadFlag,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      ++it;  // pinned right now (or racing Unregister won)
      continue;
    }
    callbacks->push_back(std::move(e->on_evict));
    ++it;  // advance before FinishRemovalLocked erases the node
    FinishRemovalLocked(e, /*count_as_eviction=*/true, proactive);
  }
}

void ResourceManager::CollectWeightedVictimsLocked(
    uint64_t target, std::vector<EvictCallback>* callbacks) {
  // Rank unpinned, swappable general-pool resources by descending t/w.
  struct Candidate {
    double score;
    ResourceHandle entry;
  };
  const uint64_t now = clock_.load();
  std::vector<Candidate> candidates;
  auto& lru = lru_[static_cast<int>(PoolId::kGeneral)];
  for (auto it = lru.begin(); it != lru.end();) {
    ResourceHandle e = Find(*it);
    if (e == nullptr) {
      it = lru.erase(it);
      continue;
    }
    const uint64_t state = e->pin_state.load(std::memory_order_acquire);
    if (state == 0 && e->disposition != Disposition::kNonSwappable) {
      double t = static_cast<double>(now - e->last_touch);
      candidates.push_back({t / DispositionWeight(e->disposition),
                            std::move(e)});
    }
    ++it;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  for (Candidate& c : candidates) {
    if (total_bytes_.load(std::memory_order_relaxed) <= target) break;
    uint64_t expected = 0;
    if (!c.entry->pin_state.compare_exchange_strong(
            expected, kDeadFlag, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      continue;  // pinned (or removed) since the scan above
    }
    callbacks->push_back(std::move(c.entry->on_evict));
    FinishRemovalLocked(c.entry, /*count_as_eviction=*/true,
                        /*proactive=*/false);
  }
}

void ResourceManager::ReactiveEvictLocked(
    std::vector<EvictCallback>* callbacks) {
  const uint64_t budget = global_budget_.load(std::memory_order_relaxed);
  if (budget == 0 || total_bytes_.load(std::memory_order_relaxed) <= budget) {
    return;
  }
  // Deferred touches must land before picking victims or the LRU order
  // would ignore recent activity.
  FlushTouchesLocked();
  // Low-memory situation: paged-attribute resources are unloaded first, down
  // to each pool's lower limit, before touching anything else (§5).
  for (int p = 0; p < kNumPools; ++p) {
    if (total_bytes_.load(std::memory_order_relaxed) <= budget) break;
    if (p == static_cast<int>(PoolId::kGeneral)) continue;
    // These count as reactive, not proactive: budget pressure, not sweeper.
    CollectPagedVictimsLocked(
        static_cast<PoolId>(p),
        pool_limits_[p].lower.load(std::memory_order_relaxed),
        /*proactive=*/false, callbacks);
  }
  if (total_bytes_.load(std::memory_order_relaxed) > budget) {
    CollectWeightedVictimsLocked(budget, callbacks);
  }
}

void ResourceManager::PruneDeadLruNodesLocked() {
  // dead_lru_nodes_ counts unregisters since the last prune — an upper
  // bound on stale nodes (some never reached a list, eviction walks erase
  // others in passing), so the reset below can only make pruning *less*
  // frequent, never let stale nodes grow unboundedly.
  if (dead_lru_nodes_.load(std::memory_order_relaxed) <
      kDeadLruPruneThreshold) {
    return;
  }
  dead_lru_nodes_.store(0, std::memory_order_relaxed);
  for (auto& lru : lru_) {
    for (auto it = lru.begin(); it != lru.end();) {
      if (Find(*it) == nullptr) {
        it = lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ResourceManager::BackgroundSweeper() {
  UniqueLock lock(mu_);
  while (!shutting_down_) {
    // Timed wait (not a predicate wait): the sweeper wakes on the 20 ms
    // tick, on limit changes, and on over-limit registrations alike.
    (void)sweeper_cv_.WaitFor(mu_, std::chrono::milliseconds(20));
    if (shutting_down_) break;
    const auto sweep_start = std::chrono::steady_clock::now();
    std::vector<EvictCallback> callbacks;
    FlushTouchesLocked();
    PruneDeadLruNodesLocked();
    for (int p = 0; p < kNumPools; ++p) {
      const uint64_t upper =
          pool_limits_[p].upper.load(std::memory_order_relaxed);
      if (upper != 0 &&
          pool_bytes_[p].load(std::memory_order_relaxed) > upper) {
        CollectPagedVictimsLocked(
            static_cast<PoolId>(p),
            pool_limits_[p].lower.load(std::memory_order_relaxed),
            /*proactive=*/true, &callbacks);
      }
    }
    if (!callbacks.empty()) {
      // Callbacks run outside mu_ (they may call back into the manager).
      lock.Unlock();
      for (auto& cb : callbacks) {
        if (cb) cb();
      }
      // Only sweeps that actually evicted register a duration/span — the
      // idle 20ms ticks would otherwise drown the histogram in zeros.
      m_sweep_duration_us_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - sweep_start)
              .count()));
      if (obs::Tracer::enabled()) {
        obs::Tracer::Global().RecordSpan("buffer", "sweep", sweep_start,
                                         callbacks.size());
      }
      lock.Lock();
    }
  }
}

}  // namespace payg
