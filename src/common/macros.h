#ifndef PAYG_COMMON_MACROS_H_
#define PAYG_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Invariant check that is active in all build types. Database code must not
// silently continue past a broken invariant: corruption would propagate into
// persisted pages.
#define PAYG_ASSERT(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PAYG_ASSERT failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define PAYG_ASSERT_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PAYG_ASSERT failed: %s (%s) at %s:%d\n", #cond,   \
                   (msg), __FILE__, __LINE__);                                \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

// Propagate a non-OK payg::Status to the caller.
#define PAYG_RETURN_IF_ERROR(expr)                                            \
  do {                                                                        \
    ::payg::Status _payg_status = (expr);                                     \
    if (!_payg_status.ok()) return _payg_status;                              \
  } while (0)

// Evaluate an expression yielding Result<T>; on error return its status,
// otherwise bind the value to `lhs`.
#define PAYG_ASSIGN_OR_RETURN(lhs, expr)                                      \
  PAYG_ASSIGN_OR_RETURN_IMPL(PAYG_CONCAT(_payg_result_, __LINE__), lhs, expr)

#define PAYG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)                            \
  auto tmp = (expr);                                                          \
  if (!tmp.ok()) return tmp.status();                                         \
  lhs = std::move(tmp).value()

#define PAYG_CONCAT_INNER(a, b) a##b
#define PAYG_CONCAT(a, b) PAYG_CONCAT_INNER(a, b)

#endif  // PAYG_COMMON_MACROS_H_
