#ifndef PAYG_COMMON_RANDOM_H_
#define PAYG_COMMON_RANDOM_H_

#include <cstdint>

#include "common/macros.h"

namespace payg {

// xorshift128+ deterministic PRNG. Benchmarks and the data generator need a
// fast, reproducible source that is identical across platforms, which
// std::mt19937 distributions are not (distribution output is
// implementation-defined).
class Random {
 public:
  explicit Random(uint64_t seed) {
    s0_ = SplitMix(seed);
    s1_ = SplitMix(s0_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    PAYG_ASSERT(n > 0);
    return Next() % n;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    PAYG_ASSERT(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli draw with probability p of true.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  static uint64_t SplitMix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace payg

#endif  // PAYG_COMMON_RANDOM_H_
