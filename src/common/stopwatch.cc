#include "common/stopwatch.h"

namespace payg {

void SpinWaitMicros(uint64_t micros) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(micros);
  while (std::chrono::steady_clock::now() < deadline) {
    // spin
  }
}

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace payg
