#ifndef PAYG_COMMON_STOPWATCH_H_
#define PAYG_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace payg {

// Monotonic wall-clock stopwatch used by benchmarks and the resource
// manager's LRU clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// A monotonically increasing logical timestamp, cheap enough for per-touch
// LRU bookkeeping.
uint64_t MonotonicNanos();

// Busy-waits for `micros` microseconds. Used to simulate sub-millisecond
// device latencies precisely; OS sleep primitives round small sleeps up to
// scheduler granularity (50µs+), which would distort the simulation.
void SpinWaitMicros(uint64_t micros);

}  // namespace payg

#endif  // PAYG_COMMON_STOPWATCH_H_
