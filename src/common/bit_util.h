#ifndef PAYG_COMMON_BIT_UTIL_H_
#define PAYG_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace payg {

// The number of bits needed to represent `value` with uniform n-bit packing.
// By convention 0 still needs 1 bit so that an all-zero vector remains
// addressable as a packed vector.
inline uint32_t BitsNeeded(uint64_t value) {
  return value == 0 ? 1u : static_cast<uint32_t>(std::bit_width(value));
}

// Round `v` up to the next multiple of `align` (align must be a power of 2).
inline uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Ceiling division for unsigned integers.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// A mask with the lowest `bits` bits set; bits may be 0..64.
inline uint64_t LowMask(uint32_t bits) {
  return bits >= 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
}

}  // namespace payg

#endif  // PAYG_COMMON_BIT_UTIL_H_
