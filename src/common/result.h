#ifndef PAYG_COMMON_RESULT_H_
#define PAYG_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace payg {

// A value-or-status holder, in the spirit of absl::StatusOr. The value is
// only accessible when ok(); accessing it otherwise aborts.
// [[nodiscard]] for the same reason as Status: discarding a Result discards
// the error path along with the value.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from values and from Status keeps call sites
  // readable: `return 42;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PAYG_ASSERT_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PAYG_ASSERT_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    PAYG_ASSERT_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    PAYG_ASSERT_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace payg

#endif  // PAYG_COMMON_RESULT_H_
