#include "common/status.h"

namespace payg {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace payg
