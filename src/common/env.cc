#include "common/env.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace payg {

long EnvLong(const char* name, long min, long max, long fallback) {
  // lint:allow(raw-getenv) — this is the sanctioned doorway.
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(env, &end, 10);
  if (errno != 0 || end == env || *end != '\0') return fallback;
  return std::clamp(v, min, max);
}

bool EnvFlag(const char* name) {
  // lint:allow(raw-getenv) — this is the sanctioned doorway.
  const char* env = std::getenv(name);
  return env != nullptr && env[0] == '1';
}

const char* EnvRaw(const char* name) {
  // lint:allow(raw-getenv) — this is the sanctioned doorway.
  return std::getenv(name);
}

}  // namespace payg
