// Clang Thread Safety Analysis annotation layer.
//
// Wraps the std synchronization primitives in thin shims that carry TSA
// capability attributes, so the lock discipline documented in DESIGN.md §8
// (manager mu_ -> table/touch stripes, never two cache shards at once,
// *Locked() helpers only under their mutex) is *proved* at compile time on
// clang builds instead of merely exercised by the TSan leg.
//
// On clang, build with -DPAYG_THREAD_SAFETY=ON to turn the analysis into a
// hard gate (-Wthread-safety -Werror=thread-safety). On other compilers every
// macro expands to nothing and the shims cost exactly what the std types
// cost. Conventions and the suppression policy live in DESIGN.md S21.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define PAYG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PAYG_THREAD_ANNOTATION(x)  // no-op
#endif

#define CAPABILITY(x) PAYG_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY PAYG_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) PAYG_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) PAYG_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) PAYG_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PAYG_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) PAYG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) PAYG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) PAYG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) PAYG_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) PAYG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) PAYG_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) PAYG_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) PAYG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) PAYG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) PAYG_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) PAYG_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS PAYG_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace payg {

// std::mutex wearing a TSA capability. Use only through MutexLock/UniqueLock
// (or CondVar), never bare Lock/Unlock pairs in new code.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Escape hatch for interop with std APIs (CondVar uses it via adopt_lock).
  // Callers touching this directly must justify it in DESIGN.md S21.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII lock held for a full scope — the std::lock_guard replacement.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Relockable RAII lock — the std::unique_lock replacement for paths that
// drop the lock mid-scope (callback invocation, sweeper loops).
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), locked_(true) {
    mu_.Lock();
  }
  UniqueLock(Mutex& mu, std::defer_lock_t) EXCLUDES(mu)
      : mu_(mu), locked_(false) {}
  ~UniqueLock() RELEASE() {
    if (locked_) mu_.Unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void Lock() ACQUIRE() {
    mu_.Lock();
    locked_ = true;
  }
  void Unlock() RELEASE() {
    mu_.Unlock();
    locked_ = false;
  }
  bool OwnsLock() const { return locked_; }

 private:
  Mutex& mu_;
  bool locked_;
};

// Condition variable over payg::Mutex. Wait/WaitFor require the caller to
// hold the mutex (expressed as REQUIRES so TSA checks the wait loop); the
// lock is released for the duration of the wait and re-held on return, which
// TSA models as "still held across the call" — correct for the caller's
// while-loop view. Use explicit `while (!pred) cv.Wait(mu);` loops, never
// predicate lambdas (TSA analyzes lambdas with an empty lockset).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // caller's scope still owns the (re-acquired) lock
  }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& dur)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.native(), std::adopt_lock);
    std::cv_status st = cv_.wait_for(lk, dur);
    lk.release();
    return st;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace payg
