#ifndef PAYG_COMMON_ENV_H_
#define PAYG_COMMON_ENV_H_

// The single sanctioned doorway to process environment variables. Every
// PAYG_* knob goes through these helpers so parsing is uniformly strict:
// unset, empty, or malformed values (trailing garbage, no digits, overflow)
// fall back to the documented default instead of silently half-parsing.
// scripts/lint.py bans raw `getenv` anywhere else under src/.

namespace payg {

// Strict decimal parse of env var `name`. Returns `fallback` when the
// variable is unset, empty, or malformed (non-numeric, trailing garbage,
// out of `long` range); well-formed values are clamped to [min, max].
long EnvLong(const char* name, long min, long max, long fallback);

// True iff the variable is set and its first character is '1'
// (the PAYG_FORCE_SCALAR / PAYG_TRACE on-switch convention).
bool EnvFlag(const char* name);

// Raw string value, or nullptr when unset. For enum-style knobs
// (e.g. PAYG_SIMD=scalar|sse42|avx2) that the caller matches itself.
const char* EnvRaw(const char* name);

}  // namespace payg

#endif  // PAYG_COMMON_ENV_H_
