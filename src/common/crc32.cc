#include "common/crc32.h"

#include <array>

namespace payg {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C polynomial

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFF];
  }
  return ~crc;
}

}  // namespace payg
