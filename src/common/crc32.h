#ifndef PAYG_COMMON_CRC32_H_
#define PAYG_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace payg {

// CRC-32C (Castagnoli) over a byte buffer; used for page checksums.
// Software table-driven implementation — pages are checksummed once per
// write/read, not on the scan hot path.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace payg

#endif  // PAYG_COMMON_CRC32_H_
