#ifndef PAYG_COMMON_STATUS_H_
#define PAYG_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace payg {

// Error codes used across the store. Kept deliberately small; the message
// carries the detail.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kUnsupported,
  kInternal,
  kDeadlineExceeded,
};

// RocksDB-style status object. Cheap to copy in the OK case (no allocation).
// [[nodiscard]]: a dropped Status is a swallowed error — callers must check,
// propagate (PAYG_RETURN_IF_ERROR), or cast to void with a justifying
// comment (see DESIGN.md S21).
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Unsupported(std::string_view msg) {
    return Status(StatusCode::kUnsupported, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// The name of a status code, e.g. "NotFound".
std::string_view StatusCodeName(StatusCode code);

}  // namespace payg

#endif  // PAYG_COMMON_STATUS_H_
