#include "storage/page_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "exec/exec_context.h"
#include "obs/trace.h"
#include "storage/io_backend.h"

namespace payg {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

PageFile::PageFile(std::string path, int fd, uint32_t page_size,
                   uint64_t page_count, const StorageOptions& opts,
                   IoStats* stats)
    : path_(std::move(path)),
      fd_(fd),
      page_size_(page_size),
      page_count_(page_count),
      opts_(opts),
      stats_(stats) {
  auto& reg = obs::MetricsRegistry::Global();
  m_pages_read_ = reg.counter("storage.read.pages");
  m_bytes_read_ = reg.counter("storage.read.bytes");
  m_pages_written_ = reg.counter("storage.write.pages");
  m_bytes_written_ = reg.counter("storage.write.bytes");
  m_read_latency_us_ = reg.histogram("storage.read.latency_us");
  m_write_latency_us_ = reg.histogram("storage.write.latency_us");
  m_io_batches_ = reg.counter("io.batches_submitted");
  m_io_batch_pages_ = reg.histogram("io.batch_pages");
  m_io_inflight_ = reg.gauge("io.inflight");
  m_io_completion_latency_us_ = reg.histogram("io.completion_latency_us");
  m_io_checksum_fail_ = reg.counter("io.checksum_fail");
}

PageFile::~PageFile() {
  // ReadPages holds inflight_batches_ for its whole duration; by the time an
  // owner destroys the file every cache waiter is gone, so this drains in
  // at most one batch's tail.
  while (inflight_batches_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path,
                                                   uint32_t page_size,
                                                   const StorageOptions& opts,
                                                   IoStats* stats) {
  if (page_size <= sizeof(PageHeader)) {
    return Status::InvalidArgument("page size too small");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(Errno("create", path));
  return std::unique_ptr<PageFile>(
      new PageFile(path, fd, page_size, 0, opts, stats));
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path,
                                                 uint32_t page_size,
                                                 const StorageOptions& opts,
                                                 IoStats* stats) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Status::IOError(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(Errno("fstat", path));
  }
  if (st.st_size % page_size != 0) {
    ::close(fd);
    return Status::Corruption("file size is not a multiple of page size: " +
                              path);
  }
  uint64_t count = static_cast<uint64_t>(st.st_size) / page_size;
  return std::unique_ptr<PageFile>(
      new PageFile(path, fd, page_size, count, opts, stats));
}

Result<LogicalPageNo> PageFile::AppendPage(Page* page) {
  LogicalPageNo lpn = page_count_.fetch_add(1);
  Status s = WritePage(lpn, page);
  if (!s.ok()) return s;
  return lpn;
}

Status PageFile::WritePage(LogicalPageNo lpn, Page* page) {
  PAYG_ASSERT(page->size() == page_size_);
  page->header()->logical_page_no = lpn;
  page->SealChecksum();
  off_t offset = static_cast<off_t>(lpn) * page_size_;
  Stopwatch timer;
  ssize_t n = ::pwrite(fd_, page->raw(), page_size_, offset);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError(Errno("pwrite", path_));
  }
  m_write_latency_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  m_pages_written_->Inc();
  m_bytes_written_->Add(page_size_);
  if (stats_ != nullptr) {
    stats_->pages_written.fetch_add(1, std::memory_order_relaxed);
    stats_->bytes_written.fetch_add(page_size_, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status PageFile::ReadPage(LogicalPageNo lpn, Page* page,
                          ExecContext* ctx) const {
  PAYG_ASSERT(page->size() == page_size_);
  if (lpn >= page_count_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("page " + std::to_string(lpn) +
                              " beyond end of chain " + path_);
  }
  // The span and the latency histogram both cover the whole physical read,
  // including the simulated device latency — that is the cost the paper's
  // cold-read measurements are about.
  obs::TraceSpan span("io", "page_read", lpn);
  Stopwatch timer;
  ChargeSimulatedLatency(opts_.simulated_read_latency_us);
  off_t offset = static_cast<off_t>(lpn) * page_size_;
  size_t got = 0;
  Status s = PreadFull(fd_, page->raw(), page_size_, offset, &got);
  if (!s.ok()) return s;
  if (got < page_size_) {
    return Status::IOError("short read at lpn " + std::to_string(lpn) +
                           " in " + path_);
  }
  s = VerifyLoadedPage(lpn, page, ctx);
  if (!s.ok()) return s;
  m_read_latency_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  return Status::OK();
}

Status PageFile::VerifyLoadedPage(LogicalPageNo lpn, Page* page,
                                  ExecContext* ctx) const {
  if (page->header()->magic != PageHeader::kMagic) {
    return Status::Corruption("bad page magic at lpn " + std::to_string(lpn) +
                              " in " + path_);
  }
  if (page->header()->logical_page_no != lpn) {
    return Status::Corruption("page number mismatch at lpn " +
                              std::to_string(lpn) + " in " + path_);
  }
  // Before anything walks `payload_size` bytes (the checksum below, every
  // decoder above) it must fit the page: a corrupt header claiming 4 GB of
  // payload would otherwise send the CRC straight past the buffer.
  if (page->header()->payload_size > page->capacity()) {
    return Status::Corruption("payload size " +
                              std::to_string(page->header()->payload_size) +
                              " exceeds page capacity at lpn " +
                              std::to_string(lpn) + " in " + path_);
  }
  if (opts_.verify_checksums && !page->VerifyChecksum()) {
    m_io_checksum_fail_->Inc();
    return Status::Corruption("checksum mismatch at lpn " +
                              std::to_string(lpn) + " in " + path_);
  }
  m_pages_read_->Inc();
  m_bytes_read_->Add(page_size_);
  if (stats_ != nullptr) {
    stats_->pages_read.fetch_add(1, std::memory_order_relaxed);
    stats_->bytes_read.fetch_add(page_size_, std::memory_order_relaxed);
  }
  CountPageRead(ctx, page_size_);
  return Status::OK();
}

void PageFile::ReadPages(const LogicalPageNo* lpns, Page* const* pages,
                         Status* statuses, size_t n, ExecContext* ctx,
                         const PageIoDoneFn& done) const {
  if (n == 0) return;
  // Keep the file alive until every page of this batch is finalized: the
  // destructor spins on this count (see ~PageFile).
  inflight_batches_.fetch_add(1, std::memory_order_acq_rel);
  struct BatchScope {
    const std::atomic<uint64_t>* c;
    ~BatchScope() {
      const_cast<std::atomic<uint64_t>*>(c)->fetch_sub(
          1, std::memory_order_acq_rel);
    }
  } scope{&inflight_batches_};

  obs::TraceSpan span("io", "batch_read", n);
  m_io_batches_->Inc();
  m_io_batch_pages_->Record(n);
  m_io_inflight_->Add(static_cast<int64_t>(n));
  Stopwatch timer;

  // Screen out-of-range pages up front so the backend only ever sees real
  // file offsets; they complete (with OutOfRange) immediately.
  const uint64_t count = page_count_.load(std::memory_order_acquire);
  std::vector<PageIoRequest> reqs;
  reqs.reserve(n);
  std::vector<size_t> orig;  // backend index -> caller index
  orig.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PAYG_ASSERT(pages[i]->size() == page_size_);
    if (lpns[i] >= count) {
      statuses[i] = Status::OutOfRange("page " + std::to_string(lpns[i]) +
                                       " beyond end of chain " + path_);
      m_io_inflight_->Add(-1);
      if (done) done(i);
      continue;
    }
    PageIoRequest req;
    req.lpn = lpns[i];
    req.buf = pages[i]->raw();
    reqs.push_back(std::move(req));
    orig.push_back(i);
  }
  if (reqs.empty()) return;

  // The backend moves bytes; verification and accounting happen here, per
  // page, before the caller's completion hook sees it.
  auto finalize = [&](size_t j) {
    const size_t i = orig[j];
    Status st = std::move(reqs[j].status);
    if (st.ok()) st = VerifyLoadedPage(lpns[i], pages[i], ctx);
    statuses[i] = std::move(st);
    m_io_completion_latency_us_->Record(
        static_cast<uint64_t>(timer.ElapsedMicros()));
    m_io_inflight_->Add(-1);
    if (done) done(i);
  };
  CurrentIoBackend()->ReadBatch(fd_, page_size_, reqs.data(), reqs.size(),
                                opts_.simulated_read_latency_us, finalize);
}

Status PageFile::Sync() {
  if (::fsync(fd_) != 0) return Status::IOError(Errno("fsync", path_));
  return Status::OK();
}

}  // namespace payg
