#include "storage/page_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "common/stopwatch.h"
#include "exec/exec_context.h"
#include "obs/trace.h"

namespace payg {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

PageFile::PageFile(std::string path, int fd, uint32_t page_size,
                   uint64_t page_count, const StorageOptions& opts,
                   IoStats* stats)
    : path_(std::move(path)),
      fd_(fd),
      page_size_(page_size),
      page_count_(page_count),
      opts_(opts),
      stats_(stats) {
  auto& reg = obs::MetricsRegistry::Global();
  m_pages_read_ = reg.counter("storage.read.pages");
  m_bytes_read_ = reg.counter("storage.read.bytes");
  m_pages_written_ = reg.counter("storage.write.pages");
  m_bytes_written_ = reg.counter("storage.write.bytes");
  m_read_latency_us_ = reg.histogram("storage.read.latency_us");
  m_write_latency_us_ = reg.histogram("storage.write.latency_us");
}

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PageFile>> PageFile::Create(const std::string& path,
                                                   uint32_t page_size,
                                                   const StorageOptions& opts,
                                                   IoStats* stats) {
  if (page_size <= sizeof(PageHeader)) {
    return Status::InvalidArgument("page size too small");
  }
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(Errno("create", path));
  return std::unique_ptr<PageFile>(
      new PageFile(path, fd, page_size, 0, opts, stats));
}

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path,
                                                 uint32_t page_size,
                                                 const StorageOptions& opts,
                                                 IoStats* stats) {
  int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return Status::IOError(Errno("open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(Errno("fstat", path));
  }
  if (st.st_size % page_size != 0) {
    ::close(fd);
    return Status::Corruption("file size is not a multiple of page size: " +
                              path);
  }
  uint64_t count = static_cast<uint64_t>(st.st_size) / page_size;
  return std::unique_ptr<PageFile>(
      new PageFile(path, fd, page_size, count, opts, stats));
}

Result<LogicalPageNo> PageFile::AppendPage(Page* page) {
  LogicalPageNo lpn = page_count_.fetch_add(1);
  Status s = WritePage(lpn, page);
  if (!s.ok()) return s;
  return lpn;
}

Status PageFile::WritePage(LogicalPageNo lpn, Page* page) {
  PAYG_ASSERT(page->size() == page_size_);
  page->header()->logical_page_no = lpn;
  page->SealChecksum();
  off_t offset = static_cast<off_t>(lpn) * page_size_;
  Stopwatch timer;
  ssize_t n = ::pwrite(fd_, page->raw(), page_size_, offset);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError(Errno("pwrite", path_));
  }
  m_write_latency_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  m_pages_written_->Inc();
  m_bytes_written_->Add(page_size_);
  if (stats_ != nullptr) {
    stats_->pages_written.fetch_add(1, std::memory_order_relaxed);
    stats_->bytes_written.fetch_add(page_size_, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status PageFile::ReadPage(LogicalPageNo lpn, Page* page,
                          ExecContext* ctx) const {
  PAYG_ASSERT(page->size() == page_size_);
  if (lpn >= page_count_.load(std::memory_order_acquire)) {
    return Status::OutOfRange("page " + std::to_string(lpn) +
                              " beyond end of chain " + path_);
  }
  // The span and the latency histogram both cover the whole physical read,
  // including the simulated device latency — that is the cost the paper's
  // cold-read measurements are about.
  obs::TraceSpan span("io", "page_read", lpn);
  Stopwatch timer;
  if (opts_.simulated_read_latency_us > 0) {
    if (opts_.simulated_read_latency_us >= 1000) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(opts_.simulated_read_latency_us));
    } else {
      // OS sleeps round sub-millisecond waits up to scheduler granularity;
      // spin for precision.
      SpinWaitMicros(opts_.simulated_read_latency_us);
    }
  }
  off_t offset = static_cast<off_t>(lpn) * page_size_;
  ssize_t n = ::pread(fd_, page->raw(), page_size_, offset);
  if (n != static_cast<ssize_t>(page_size_)) {
    return Status::IOError(Errno("pread", path_));
  }
  if (page->header()->magic != PageHeader::kMagic) {
    return Status::Corruption("bad page magic at lpn " + std::to_string(lpn) +
                              " in " + path_);
  }
  if (page->header()->logical_page_no != lpn) {
    return Status::Corruption("page number mismatch at lpn " +
                              std::to_string(lpn) + " in " + path_);
  }
  if (opts_.verify_checksums && !page->VerifyChecksum()) {
    return Status::Corruption("checksum mismatch at lpn " +
                              std::to_string(lpn) + " in " + path_);
  }
  m_read_latency_us_->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  m_pages_read_->Inc();
  m_bytes_read_->Add(page_size_);
  if (stats_ != nullptr) {
    stats_->pages_read.fetch_add(1, std::memory_order_relaxed);
    stats_->bytes_read.fetch_add(page_size_, std::memory_order_relaxed);
  }
  CountPageRead(ctx, page_size_);
  return Status::OK();
}

Status PageFile::Sync() {
  if (::fsync(fd_) != 0) return Status::IOError(Errno("fsync", path_));
  return Status::OK();
}

}  // namespace payg
