#include "storage/byte_stream.h"

#include <cstring>

namespace payg {

void ChainByteWriter::PutBytes(const void* data, size_t n) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  while (n > 0) {
    uint32_t room = page_.capacity() - fill_;
    if (room == 0) {
      page_.set_payload_size(fill_);
      auto r = file_->AppendPage(&page_);
      if (!r.ok() && deferred_.ok()) deferred_ = r.status();
      fill_ = 0;
      continue;
    }
    uint32_t take = static_cast<uint32_t>(std::min<size_t>(n, room));
    std::memcpy(page_.payload() + fill_, src, take);
    fill_ += take;
    src += take;
    n -= take;
    bytes_written_ += take;
  }
}

Status ChainByteWriter::Finish() {
  if (!deferred_.ok()) return deferred_;
  if (fill_ > 0 || bytes_written_ == 0) {
    page_.set_payload_size(fill_);
    auto r = file_->AppendPage(&page_);
    if (!r.ok()) return r.status();
    fill_ = 0;
  }
  return Status::OK();
}

Status ChainByteReader::GetBytes(void* out, size_t n) {
  uint8_t* dst = static_cast<uint8_t*>(out);
  while (n > 0) {
    if (pos_ == avail_) {
      if (next_page_ >= file_->page_count()) {
        return Status::OutOfRange("byte stream exhausted");
      }
      PAYG_RETURN_IF_ERROR(file_->ReadPage(next_page_++, &page_));
      pos_ = 0;
      avail_ = page_.payload_size();
      continue;
    }
    uint32_t take = static_cast<uint32_t>(std::min<size_t>(n, avail_ - pos_));
    std::memcpy(dst, page_.payload() + pos_, take);
    pos_ += take;
    dst += take;
    n -= take;
  }
  return Status::OK();
}

Result<uint8_t> ChainByteReader::GetU8() {
  uint8_t v;
  PAYG_RETURN_IF_ERROR(GetBytes(&v, sizeof(v)));
  return v;
}

Result<uint32_t> ChainByteReader::GetU32() {
  uint32_t v;
  PAYG_RETURN_IF_ERROR(GetBytes(&v, sizeof(v)));
  return v;
}

Result<uint64_t> ChainByteReader::GetU64() {
  uint64_t v;
  PAYG_RETURN_IF_ERROR(GetBytes(&v, sizeof(v)));
  return v;
}

Result<int64_t> ChainByteReader::GetI64() {
  int64_t v;
  PAYG_RETURN_IF_ERROR(GetBytes(&v, sizeof(v)));
  return v;
}

Result<double> ChainByteReader::GetDouble() {
  double v;
  PAYG_RETURN_IF_ERROR(GetBytes(&v, sizeof(v)));
  return v;
}

Result<std::string> ChainByteReader::GetString() {
  auto len = GetU64();
  if (!len.ok()) return len.status();
  std::string s(*len, '\0');
  PAYG_RETURN_IF_ERROR(GetBytes(s.data(), s.size()));
  return s;
}

}  // namespace payg
