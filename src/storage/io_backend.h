#ifndef PAYG_STORAGE_IO_BACKEND_H_
#define PAYG_STORAGE_IO_BACKEND_H_

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "storage/page.h"

namespace payg {

// One page of a batched read: where the bytes go and how that page fared.
// The backend fills `status` as the page completes; verification of the
// page contents (magic, checksum) stays with the caller — the backend only
// moves bytes.
struct PageIoRequest {
  LogicalPageNo lpn = kInvalidPageNo;
  uint8_t* buf = nullptr;  // page_size bytes, caller-owned
  Status status;
};

// Invoked on the submitting thread as each page of a batch completes —
// possibly long before the whole batch returns. The argument is the index
// into the request array; the request's `status` is final by then. This is
// what makes completion-driven cache publish possible: a waiter on page k
// wakes when page k's read lands, not when the slowest page of the batch
// does.
using PageIoDoneFn = std::function<void(size_t)>;

// Strategy for turning a batch of page reads into device traffic. Two
// implementations exist: the portable synchronous pread path (one device
// round trip per page, contiguous runs coalesced into one preadv syscall)
// and a Linux io_uring backend (vectored multi-page SQEs submitted from one
// submission queue, up to IoQueueDepth() in flight, one simulated device
// round trip per submission wave). Backends are stateless singletons; all
// per-batch state lives on the calling thread.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual const char* name() const = 0;

  // True when the backend overlaps in-flight requests (its round-trip cost
  // is per submission wave, not per page).
  virtual bool queue_depth_aware() const = 0;

  // Reads every request's page from `fd` (offset = lpn * page_size) into
  // its buffer. Blocking: returns once every request carries a final
  // status; `done` (may be empty) fires per page as it completes. A page
  // failure (short read, I/O error) is reported in that page's status and
  // never poisons the rest of the batch. `simulated_latency_us` is the
  // modeled cost of one device round trip (see class comment for how each
  // backend maps round trips onto a batch).
  virtual void ReadBatch(int fd, uint32_t page_size, PageIoRequest* reqs,
                         size_t n, uint32_t simulated_latency_us,
                         const PageIoDoneFn& done) = 0;
};

// The process-wide backend reads are routed through. Selected on first use
// from PAYG_IO_BACKEND (auto | sync | uring): `auto` (default) picks uring
// when the runtime probe succeeds, else sync; asking for `uring` on a host
// without it falls back to sync with a one-time note on stderr, so test
// legs pinned to uring skip-not-fail on kernels lacking io_uring. The
// effective choice is published as the "io.backend" gauge (0 sync,
// 1 uring).
IoBackend* CurrentIoBackend();

// Switches the process-wide backend ("sync" / "uring"). For tests and
// benchmarks sweeping both backends in one process; callers quiesce
// outstanding I/O first (WaitForPrefetchIdle). Fails with Unsupported when
// uring is requested but unavailable, leaving the current backend in place.
Status SetIoBackend(const char* name);

// Result of the one-time io_uring runtime probe (io_uring_setup + mmap;
// seccomp or an old kernel make it fail cleanly).
bool IoUringAvailable();

// Submission queue depth for queue-depth-aware backends: PAYG_IO_DEPTH,
// clamped to [1, 128], default 8. Published as the "io.depth" gauge.
uint32_t IoQueueDepth();

// Overrides the depth (tests / bench sweeps). Takes effect on the next
// batch; each submitter's ring is re-sized lazily.
void SetIoQueueDepth(uint32_t depth);

// EINTR-retrying full pread shared by the sync backend and the single-page
// read path; consults the test fault hook before each syscall. On success
// `*got` is the byte count actually read (short only at end of file).
Status PreadFull(int fd, uint8_t* buf, size_t len, off_t offset, size_t* got);

// Sleeps (or spins, below scheduler granularity) for one simulated device
// round trip. Zero is free.
void ChargeSimulatedLatency(uint32_t latency_us);

// Test seam for fault injection: the hook is consulted immediately before
// every read syscall (pread/preadv and io_uring_enter) and returns an errno
// to simulate for that call, or 0 for no fault. Backends treat an injected
// errno exactly like the real one (EINTR retries, others fail the affected
// pages). Plain function pointer so the hot path is one relaxed load.
using IoFaultHook = int (*)();
void SetIoFaultHookForTest(IoFaultHook hook);

// Number of read syscalls issued so far (pread/preadv + io_uring_enter),
// mirroring the "io.syscalls" counter: the sync backend's preadv coalescing
// and uring's batched submission both show up as this growing slower than
// "storage.read.pages".
uint64_t IoReadSyscallCount();

namespace internal {
// Implemented in io_uring_backend.cc. Null on platforms without io_uring
// support compiled in or when the runtime probe fails.
IoBackend* UringBackendOrNull();
// Bumps the shared "io.syscalls" counter (for the uring translation unit).
void CountReadSyscall();
// Consults the test fault hook (for the uring translation unit).
int ConsumeInjectedFault();
}  // namespace internal

}  // namespace payg

#endif  // PAYG_STORAGE_IO_BACKEND_H_
