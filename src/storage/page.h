#ifndef PAYG_STORAGE_PAGE_H_
#define PAYG_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <memory>

#include "common/macros.h"

namespace payg {

// Logical page number within one page chain (== offset / page_size in the
// chain's backing file).
using LogicalPageNo = uint64_t;

inline constexpr LogicalPageNo kInvalidPageNo = ~LogicalPageNo{0};

// What a page stores. Persisted in the page header; used for integrity
// checks when a chain is re-opened.
enum class PageType : uint16_t {
  kFree = 0,
  kDataVector = 1,        // chunks of n-bit packed value identifiers
  kDictionary = 2,        // prefix-encoded string value blocks
  kDictOverflow = 3,      // off-page pieces of large dictionary strings
  kDictHelperValueId = 4, // sparse index: last vid per dictionary page
  kDictHelperValue = 5,   // sparse index: last value per dictionary page
  kIndexPostinglist = 6,  // inverted index: row-position blocks
  kIndexDirectory = 7,    // inverted index: offset blocks
  kIndexMixed = 8,        // postinglist block followed by directory block
  kMeta = 9,              // structure-level metadata
};

// Fixed 64-byte header at the start of every persisted page.
struct PageHeader {
  static constexpr uint32_t kMagic = 0x50415947;  // "PAYG"

  uint32_t magic = kMagic;
  uint16_t version = 1;
  uint16_t type = 0;                   // PageType
  uint64_t logical_page_no = 0;
  uint64_t structure_id = 0;           // owner structure, for diagnostics
  uint32_t payload_size = 0;           // valid payload bytes after header
  uint32_t aux = 0;                    // type-specific (e.g. chunk count)
  uint32_t aux2 = 0;                   // type-specific
  uint32_t crc = 0;                    // CRC-32C of the payload
  uint8_t reserved[24] = {};
};
static_assert(sizeof(PageHeader) == 64, "page header must stay 64 bytes");

// A fixed-size page buffer: 64-byte header followed by payload. Pages are
// the unit of disk transfer, of buffer-manager accounting, and of eviction
// for page loadable columns.
class Page {
 public:
  explicit Page(uint32_t page_size)
      : size_(page_size), data_(new uint8_t[page_size]) {
    PAYG_ASSERT_MSG(page_size > sizeof(PageHeader),
                    "page must fit header plus payload");
    std::memset(data_.get(), 0, page_size);
    new (data_.get()) PageHeader();  // stamp magic/version defaults
  }

  Page(Page&&) = default;
  Page& operator=(Page&&) = default;
  Page(const Page&) = delete;
  Page& operator=(const Page&) = delete;

  uint32_t size() const { return size_; }
  uint32_t capacity() const {
    return size_ - static_cast<uint32_t>(sizeof(PageHeader));
  }

  PageHeader* header() { return reinterpret_cast<PageHeader*>(data_.get()); }
  const PageHeader* header() const {
    return reinterpret_cast<const PageHeader*>(data_.get());
  }

  uint8_t* payload() { return data_.get() + sizeof(PageHeader); }
  const uint8_t* payload() const { return data_.get() + sizeof(PageHeader); }

  uint8_t* raw() { return data_.get(); }
  const uint8_t* raw() const { return data_.get(); }

  PageType type() const { return static_cast<PageType>(header()->type); }
  void set_type(PageType t) { header()->type = static_cast<uint16_t>(t); }

  uint32_t payload_size() const { return header()->payload_size; }
  void set_payload_size(uint32_t n) {
    PAYG_ASSERT(n <= capacity());
    header()->payload_size = n;
  }

  // Recompute and store the payload checksum. Called by the page file on
  // write; readers verify.
  void SealChecksum();
  bool VerifyChecksum() const;

 private:
  uint32_t size_;
  std::unique_ptr<uint8_t[]> data_;
};

}  // namespace payg

#endif  // PAYG_STORAGE_PAGE_H_
