#include "storage/page.h"

#include "common/crc32.h"

namespace payg {

void Page::SealChecksum() {
  header()->crc = Crc32c(payload(), header()->payload_size);
}

bool Page::VerifyChecksum() const {
  return header()->crc == Crc32c(payload(), header()->payload_size);
}

}  // namespace payg
