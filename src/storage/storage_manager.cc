#include "storage/storage_manager.h"

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/env.h"

namespace payg {

namespace {

// PAYG_VERIFY_CHECKSUMS: tri-state override of StorageOptions::
// verify_checksums (which defaults to on). "0" disables read-path checksum
// verification, "1" forces it on, unset/other leaves the caller's options
// untouched.
void ApplyChecksumEnvOverride(StorageOptions* opts) {
  const char* raw = EnvRaw("PAYG_VERIFY_CHECKSUMS");
  if (raw == nullptr || raw[0] == '\0') return;
  if (raw[0] == '0') opts->verify_checksums = false;
  if (raw[0] == '1') opts->verify_checksums = true;
}

}  // namespace

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const std::string& directory, const StorageOptions& opts) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("create_directories " + directory + ": " +
                           ec.message());
  }
  StorageOptions effective = opts;
  ApplyChecksumEnvOverride(&effective);
  return std::unique_ptr<StorageManager>(
      new StorageManager(directory, effective));
}

std::string StorageManager::PathFor(const std::string& name) const {
  return directory_ + "/" + name;
}

Result<std::unique_ptr<PageFile>> StorageManager::CreateChain(
    const std::string& name, uint32_t page_size) {
  return PageFile::Create(PathFor(name), page_size, opts_, &io_stats_);
}

Result<std::unique_ptr<PageFile>> StorageManager::OpenChain(
    const std::string& name, uint32_t page_size) {
  return PageFile::Open(PathFor(name), page_size, opts_, &io_stats_);
}

Result<std::unique_ptr<PageFile>> StorageManager::CreateNonCriticalChain(
    const std::string& name, uint32_t page_size) {
  StorageOptions opts = opts_;
  if (opts.scm_for_noncritical) {
    opts.simulated_read_latency_us = opts.scm_read_latency_us;
  }
  return PageFile::Create(PathFor(name), page_size, opts, &io_stats_);
}

Result<std::unique_ptr<PageFile>> StorageManager::OpenNonCriticalChain(
    const std::string& name, uint32_t page_size) {
  StorageOptions opts = opts_;
  if (opts.scm_for_noncritical) {
    opts.simulated_read_latency_us = opts.scm_read_latency_us;
  }
  return PageFile::Open(PathFor(name), page_size, opts, &io_stats_);
}

Status StorageManager::DropChain(const std::string& name) {
  std::error_code ec;
  std::filesystem::remove(PathFor(name), ec);
  if (ec) {
    return Status::IOError("remove " + PathFor(name) + ": " + ec.message());
  }
  return Status::OK();
}

}  // namespace payg
