#ifndef PAYG_STORAGE_STORAGE_MANAGER_H_
#define PAYG_STORAGE_STORAGE_MANAGER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"
#include "storage/storage_options.h"

namespace payg {

// Owns the on-disk home of a column store: a directory under which every
// persisted structure (data vector, dictionary, helper index, inverted
// index) gets its own page chain file. Aggregates I/O statistics across all
// chains.
class StorageManager {
 public:
  // Creates the directory if needed.
  static Result<std::unique_ptr<StorageManager>> Open(
      const std::string& directory, const StorageOptions& opts);

  // Creates a fresh page chain named `name` (e.g. "col_42.datavector").
  // Replaces any existing chain of that name.
  Result<std::unique_ptr<PageFile>> CreateChain(const std::string& name,
                                                uint32_t page_size);

  // Re-opens an existing chain.
  Result<std::unique_ptr<PageFile>> OpenChain(const std::string& name,
                                              uint32_t page_size);

  // Creates/opens a chain holding non-critical (rebuildable) data. With
  // scm_for_noncritical set, reads from it pay the SCM latency instead of
  // the disk latency (§8).
  Result<std::unique_ptr<PageFile>> CreateNonCriticalChain(
      const std::string& name, uint32_t page_size);
  Result<std::unique_ptr<PageFile>> OpenNonCriticalChain(
      const std::string& name, uint32_t page_size);

  // Removes a chain's backing file (e.g. after a delta merge replaced it).
  Status DropChain(const std::string& name);

  const StorageOptions& options() const { return opts_; }
  const std::string& directory() const { return directory_; }
  IoStats& io_stats() { return io_stats_; }

  // Adjust the simulated read latency for chains created/opened after this
  // call (benchmarks flip this between cold and hot phases).
  void set_simulated_read_latency_us(uint32_t us) {
    opts_.simulated_read_latency_us = us;
  }

 private:
  StorageManager(std::string directory, const StorageOptions& opts)
      : directory_(std::move(directory)), opts_(opts) {}

  std::string PathFor(const std::string& name) const;

  std::string directory_;
  StorageOptions opts_;
  IoStats io_stats_;
};

}  // namespace payg

#endif  // PAYG_STORAGE_STORAGE_MANAGER_H_
