#include "storage/io_backend.h"

#include <unistd.h>
#include <sys/uio.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/env.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace payg {

namespace {

constexpr uint32_t kMaxIoDepth = 128;
// Cap on pages coalesced into one vectored read (well under IOV_MAX; at the
// default 256 KiB pages this is already a 16 MiB transfer).
constexpr size_t kMaxPagesPerVector = 64;
constexpr int kMaxEintrRetries = 100;

std::atomic<IoFaultHook> g_fault_hook{nullptr};
std::atomic<uint32_t> g_io_depth{0};  // 0 = not yet resolved from env

obs::Counter* SyscallCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().counter("io.syscalls");
  return c;
}

int InjectedFault() {
  IoFaultHook hook = g_fault_hook.load(std::memory_order_relaxed);
  return hook != nullptr ? hook() : 0;
}

// The portable fallback: per-page device round trips, exactly the cost
// model of the historical one-pread-per-page path, but with contiguous runs
// coalesced into one preadv so a batched submission issues measurably fewer
// syscalls. Completion callbacks fire page by page (after that page's
// simulated round trip), preserving completion-driven publish.
class SyncIoBackend final : public IoBackend {
 public:
  const char* name() const override { return "sync"; }
  bool queue_depth_aware() const override { return false; }

  void ReadBatch(int fd, uint32_t page_size, PageIoRequest* reqs, size_t n,
                 uint32_t simulated_latency_us,
                 const PageIoDoneFn& done) override {
    size_t i = 0;
    while (i < n) {
      // Maximal run of contiguous pages starting at i (adjacent in the
      // array AND adjacent on disk).
      size_t run = 1;
      while (i + run < n && run < kMaxPagesPerVector &&
             reqs[i + run].lpn == reqs[i].lpn + run) {
        ++run;
      }
      size_t got = 0;
      Status st = ReadRun(fd, page_size, &reqs[i], run, &got);
      for (size_t k = 0; k < run; ++k) {
        // One device round trip per page: synchronous semantics, the bytes
        // of page k "arrive" after k+1 round trips even though the preadv
        // already happened.
        ChargeSimulatedLatency(simulated_latency_us);
        if (st.ok() && (k + 1) * page_size <= got) {
          reqs[i + k].status = Status::OK();
        } else if (st.ok()) {
          reqs[i + k].status = Status::IOError(
              "short read at lpn " + std::to_string(reqs[i + k].lpn) +
              " (got " + std::to_string(got) + " of " +
              std::to_string(run * static_cast<size_t>(page_size)) +
              " run bytes)");
        } else {
          reqs[i + k].status = st;
        }
        if (done) done(i + k);
      }
      i += run;
    }
  }

 private:
  // One vectored read for `run` contiguous pages; EINTR retried, faults
  // injected via the test hook. `*got` is the total bytes read.
  static Status ReadRun(int fd, uint32_t page_size, PageIoRequest* reqs,
                        size_t run, size_t* got) {
    struct iovec iov[kMaxPagesPerVector];
    for (size_t k = 0; k < run; ++k) {
      iov[k].iov_base = reqs[k].buf;
      iov[k].iov_len = page_size;
    }
    const off_t offset = static_cast<off_t>(reqs[0].lpn) * page_size;
    const size_t want = run * static_cast<size_t>(page_size);
    size_t nvec = run;  // live iovecs; shrinks as partial reads are re-aimed
    *got = 0;
    for (int attempt = 0; attempt < kMaxEintrRetries; ++attempt) {
      int fault = InjectedFault();
      SyscallCounter()->Inc();
      ssize_t r;
      if (fault != 0) {
        errno = fault;
        r = -1;
      } else {
        r = ::preadv(fd, iov, static_cast<int>(nvec), offset + *got);
      }
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("preadv: ") + std::strerror(errno));
      }
      *got += static_cast<size_t>(r);
      if (r == 0 || *got >= want) return Status::OK();  // EOF or complete
      // Partial read: re-aim the iovecs past the bytes we have.
      size_t skip = *got;
      size_t nv = 0;
      for (size_t k = 0; k < run; ++k) {
        if (skip >= page_size) {
          skip -= page_size;
          continue;
        }
        iov[nv].iov_base = reqs[k].buf + skip;
        iov[nv].iov_len = page_size - skip;
        skip = 0;
        ++nv;
      }
      nvec = nv;  // rebuilt from scratch each attempt, from reqs + *got
    }
    return Status::IOError("preadv: persistent EINTR");
  }
};

SyncIoBackend* SyncBackend() {
  static SyncIoBackend* b = new SyncIoBackend();
  return b;
}

std::atomic<IoBackend*> g_backend{nullptr};

void PublishBackendGauge(IoBackend* b) {
  obs::MetricsRegistry::Global().gauge("io.backend")->Set(
      b->queue_depth_aware() ? 1 : 0);
}

IoBackend* ResolveBackendFromEnv() {
  const char* want = EnvRaw("PAYG_IO_BACKEND");
  IoBackend* uring = internal::UringBackendOrNull();
  IoBackend* chosen;
  if (want != nullptr && std::strcmp(want, "sync") == 0) {
    chosen = SyncBackend();
  } else if (want != nullptr && std::strcmp(want, "uring") == 0) {
    chosen = uring;
    if (chosen == nullptr) {
      std::fprintf(stderr,
                   "payg: PAYG_IO_BACKEND=uring but io_uring is unavailable "
                   "on this host; falling back to the sync backend\n");
      chosen = SyncBackend();
    }
  } else {
    // auto (also the fallback for unknown values): prefer uring.
    chosen = uring != nullptr ? uring : SyncBackend();
  }
  PublishBackendGauge(chosen);
  return chosen;
}

}  // namespace

IoBackend* CurrentIoBackend() {
  IoBackend* b = g_backend.load(std::memory_order_acquire);
  if (b != nullptr) return b;
  // First use: resolve from env. A concurrent SetIoBackend simply wins.
  IoBackend* resolved = ResolveBackendFromEnv();
  IoBackend* expected = nullptr;
  if (g_backend.compare_exchange_strong(expected, resolved,
                                        std::memory_order_acq_rel)) {
    return resolved;
  }
  return expected;
}

Status SetIoBackend(const char* name) {
  if (name != nullptr && std::strcmp(name, "sync") == 0) {
    g_backend.store(SyncBackend(), std::memory_order_release);
    PublishBackendGauge(SyncBackend());
    return Status::OK();
  }
  if (name != nullptr && std::strcmp(name, "uring") == 0) {
    IoBackend* uring = internal::UringBackendOrNull();
    if (uring == nullptr) {
      return Status::Unsupported("io_uring is unavailable on this host");
    }
    g_backend.store(uring, std::memory_order_release);
    PublishBackendGauge(uring);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown I/O backend (want sync|uring)");
}

bool IoUringAvailable() { return internal::UringBackendOrNull() != nullptr; }

uint32_t IoQueueDepth() {
  uint32_t d = g_io_depth.load(std::memory_order_relaxed);
  if (d != 0) return d;
  d = static_cast<uint32_t>(
      EnvLong("PAYG_IO_DEPTH", 1, kMaxIoDepth, /*fallback=*/8));
  obs::MetricsRegistry::Global().gauge("io.depth")->Set(d);
  g_io_depth.store(d, std::memory_order_relaxed);
  return d;
}

void SetIoQueueDepth(uint32_t depth) {
  const uint32_t d = std::clamp<uint32_t>(depth, 1, kMaxIoDepth);
  g_io_depth.store(d, std::memory_order_relaxed);
  obs::MetricsRegistry::Global().gauge("io.depth")->Set(d);
}

Status PreadFull(int fd, uint8_t* buf, size_t len, off_t offset,
                 size_t* got) {
  *got = 0;
  for (int attempt = 0; attempt < kMaxEintrRetries; ++attempt) {
    int fault = InjectedFault();
    SyscallCounter()->Inc();
    ssize_t r;
    if (fault != 0) {
      errno = fault;
      r = -1;
    } else {
      r = ::pread(fd, buf + *got, len - *got, offset + static_cast<off_t>(*got));
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("pread: ") + std::strerror(errno));
    }
    *got += static_cast<size_t>(r);
    if (r == 0 || *got >= len) return Status::OK();
  }
  return Status::IOError("pread: persistent EINTR");
}

void ChargeSimulatedLatency(uint32_t latency_us) {
  if (latency_us == 0) return;
  if (latency_us >= 1000) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
  } else {
    // OS sleeps round sub-millisecond waits up to scheduler granularity;
    // spin for precision.
    SpinWaitMicros(latency_us);
  }
}

void SetIoFaultHookForTest(IoFaultHook hook) {
  g_fault_hook.store(hook, std::memory_order_relaxed);
}

uint64_t IoReadSyscallCount() { return SyscallCounter()->value(); }

namespace internal {

int ConsumeInjectedFault() { return InjectedFault(); }

void CountReadSyscall() {
  // The shared counter is bumped by the call sites directly; this hook
  // exists for the uring translation unit, which cannot see SyscallCounter.
  SyscallCounter()->Inc();
}

}  // namespace internal

}  // namespace payg
