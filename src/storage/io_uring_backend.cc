// io_uring read backend: vectored multi-page SQEs from one submission
// queue per submitter thread, reaped completion by completion so the cache
// can publish each page the moment its bytes land. Raw syscalls + mmap'd
// rings (no liburing dependency); compile-guarded so non-Linux builds fall
// back to the sync backend via UringBackendOrNull() == nullptr.

#include "storage/io_backend.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define PAYG_HAS_IO_URING 1
#endif

#ifdef PAYG_HAS_IO_URING

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

namespace payg {

namespace {

// Pages folded into one vectored SQE. Deliberately small: one SQE models
// one device command (one simulated round trip), so the cap keeps the
// PAYG_IO_DEPTH axis meaningful — a 16-page window is 4 commands whose
// overlap the queue depth governs, not one mega-command.
constexpr size_t kMaxPagesPerSqe = 4;
constexpr int kMaxRunRetries = 8;
// Same bound the sync backend applies to EINTR storms and partial-read
// resubmission (io_backend.cc kMaxEintrRetries).
constexpr int kMaxEintrRetries = 100;

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

// One mmap'd submission/completion ring pair. Each submitter thread owns
// one (thread_local), so no cross-thread coordination is needed on the
// ring itself; the kernel is the only other party, synchronized through
// acquire/release on the mapped head/tail words.
struct Ring {
  int fd = -1;
  uint32_t sq_entries = 0;
  uint32_t cq_entries = 0;
  void* sq_ptr = nullptr;
  size_t sq_map_sz = 0;
  void* cq_ptr = nullptr;  // == sq_ptr under IORING_FEAT_SINGLE_MMAP
  size_t cq_map_sz = 0;
  io_uring_sqe* sqes = nullptr;
  size_t sqes_map_sz = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  ~Ring() { Teardown(); }

  bool Init(uint32_t want_entries) {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    fd = SysIoUringSetup(want_entries, &p);
    if (fd < 0) return false;
    sq_entries = p.sq_entries;
    cq_entries = p.cq_entries;
    sq_map_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_map_sz = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_map_sz > sq_map_sz) sq_map_sz = cq_map_sz;
    sq_ptr = ::mmap(nullptr, sq_map_sz, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    if (sq_ptr == MAP_FAILED) {
      sq_ptr = nullptr;
      Teardown();
      return false;
    }
    if (single_mmap) {
      cq_ptr = sq_ptr;
      cq_map_sz = 0;  // owned by the sq mapping
    } else {
      cq_ptr = ::mmap(nullptr, cq_map_sz, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
      if (cq_ptr == MAP_FAILED) {
        cq_ptr = nullptr;
        Teardown();
        return false;
      }
    }
    sqes_map_sz = p.sq_entries * sizeof(io_uring_sqe);
    void* m = ::mmap(nullptr, sqes_map_sz, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
    if (m == MAP_FAILED) {
      Teardown();
      return false;
    }
    sqes = static_cast<io_uring_sqe*>(m);
    auto* sq = static_cast<uint8_t*>(sq_ptr);
    sq_head = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_ptr);
    cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
    return true;
  }

  void Teardown() {
    if (sqes != nullptr) ::munmap(sqes, sqes_map_sz);
    if (cq_ptr != nullptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_map_sz);
    if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_map_sz);
    if (fd >= 0) ::close(fd);
    sqes = nullptr;
    cq_ptr = nullptr;
    sq_ptr = nullptr;
    fd = -1;
    sq_entries = 0;
  }

  bool valid() const { return fd >= 0; }
};

uint32_t CeilPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Lazily (re)initialized per submitter thread, sized to the current
// PAYG_IO_DEPTH. Returns null when setup fails on this thread (resource
// limits); the caller then degrades to synchronous per-page reads.
Ring* ThreadRing() {
  thread_local Ring ring;
  const uint32_t want = CeilPow2(IoQueueDepth());
  if (ring.valid() && ring.sq_entries >= want) return &ring;
  ring.Teardown();
  if (!ring.Init(want)) return nullptr;
  return &ring;
}

// A contiguous span of requests served by one SQE. A run may be submitted
// several times: transient errors (EINTR/EAGAIN) resubmit it whole, short
// positive completions resubmit the unread remainder (`got` bytes already
// landed, `nvec` iovecs re-aimed past them) — the same recovery the sync
// backend's ReadRun loop performs.
struct Run {
  size_t first = 0;   // index into the request array
  size_t npages = 0;
  size_t got = 0;     // bytes landed so far, across resubmissions
  unsigned nvec = 0;  // live iovecs for the next submission
  int retries = 0;    // transient-error resubmissions
  int short_retries = 0;
};

class UringIoBackend final : public IoBackend {
 public:
  const char* name() const override { return "uring"; }
  bool queue_depth_aware() const override { return true; }

  void ReadBatch(int fd, uint32_t page_size, PageIoRequest* reqs, size_t n,
                 uint32_t simulated_latency_us,
                 const PageIoDoneFn& done) override {
    if (n == 0) return;
    Ring* ring = ThreadRing();
    if (ring == nullptr) {
      FallbackSequential(fd, page_size, reqs, n, simulated_latency_us, done);
      return;
    }

    // Carve the batch into contiguous runs; each run is one vectored SQE.
    std::vector<Run> runs;
    runs.reserve(n);
    std::vector<iovec> iov(n);  // flat, stable; run r owns [first, first+npages)
    for (size_t i = 0; i < n;) {
      size_t len = 1;
      while (i + len < n && len < kMaxPagesPerSqe &&
             reqs[i + len].lpn == reqs[i].lpn + len) {
        ++len;
      }
      for (size_t k = 0; k < len; ++k) {
        iov[i + k].iov_base = reqs[i + k].buf;
        iov[i + k].iov_len = page_size;
      }
      runs.push_back(Run{i, len, 0, static_cast<unsigned>(len), 0, 0});
      i += len;
    }

    const uint32_t depth = std::min(IoQueueDepth(), ring->sq_entries);
    std::deque<size_t> pending;  // run indexes not yet submitted
    for (size_t r = 0; r < runs.size(); ++r) pending.push_back(r);
    std::vector<char> finalized(runs.size(), 0);
    // SQEs the kernel has consumed and not yet completed. While this is
    // non-zero the kernel may write into the caller's page buffers at any
    // moment, so no path may return to the caller without draining it.
    size_t kernel_inflight = 0;
    size_t completed_pages = 0;

    while (completed_pages < n) {
      // Fill the submission queue up to the configured depth.
      unsigned to_submit = 0;
      while (!pending.empty() && kernel_inflight + to_submit < depth) {
        const size_t r = pending.front();
        pending.pop_front();
        const Run& run = runs[r];
        const uint64_t off =
            static_cast<uint64_t>(reqs[run.first].lpn) * page_size +
            run.got;
        PushSqe(ring, fd, run, &iov[run.first], off, r);
        ++to_submit;
      }
      // One simulated device round trip covers everything submitted in
      // this wave — the queue-depth-aware cost model: a wave of `depth`
      // commands costs what one command costs.
      if (to_submit > 0) ChargeSimulatedLatency(simulated_latency_us);
      unsigned consumed = 0;
      const bool submitted = Submit(ring, to_submit, &consumed);
      kernel_inflight += consumed;
      if (!submitted) {
        AbortBatch(ring, reqs, page_size, &runs, &finalized,
                   &kernel_inflight, &completed_pages, done,
                   std::string("io_uring_enter: ") + std::strerror(errno));
        return;
      }
      if (kernel_inflight == 0) {
        if (!pending.empty()) continue;  // next wave picks them up
        // Unreachable by construction (every run is finalized, pending, or
        // in the kernel), but never return a page without a final status.
        FailUnfinished(reqs, runs, &finalized, &completed_pages, done,
                       "io_uring batch: internal accounting error");
        return;
      }
      if (!WaitForCompletion(ring)) {
        AbortBatch(ring, reqs, page_size, &runs, &finalized,
                   &kernel_inflight, &completed_pages, done,
                   std::string("io_uring_enter(wait): ") +
                       std::strerror(errno));
        return;
      }
      // Reap every available completion, publishing page by page.
      unsigned head = __atomic_load_n(ring->cq_head, __ATOMIC_ACQUIRE);
      const unsigned tail = __atomic_load_n(ring->cq_tail, __ATOMIC_ACQUIRE);
      while (head != tail) {
        const io_uring_cqe& cqe = ring->cqes[head & *ring->cq_mask];
        const size_t r = static_cast<size_t>(cqe.user_data);
        Run& run = runs[r];
        --kernel_inflight;
        const size_t want = run.npages * static_cast<size_t>(page_size);
        if (cqe.res == -EINTR || cqe.res == -EAGAIN) {
          if (++run.retries <= kMaxRunRetries) {
            pending.push_back(r);  // transient: resubmit as-is
          } else {
            FinishRun(reqs, page_size, run, run.got,
                      Status::IOError(
                          std::string("io_uring read: persistent ") +
                          std::strerror(-cqe.res)),
                      &completed_pages, done);
            finalized[r] = 1;
          }
        } else if (cqe.res < 0) {
          FinishRun(reqs, page_size, run, run.got,
                    Status::IOError(std::string("io_uring read: ") +
                                    std::strerror(-cqe.res)),
                    &completed_pages, done);
          finalized[r] = 1;
        } else if (cqe.res == 0 || run.got + static_cast<size_t>(cqe.res) >=
                                       want) {
          // EOF, or the run is complete. Pages past `got` (EOF case) get a
          // short-read status from FinishRun.
          run.got += static_cast<size_t>(cqe.res);
          FinishRun(reqs, page_size, run, run.got, Status::OK(),
                    &completed_pages, done);
          finalized[r] = 1;
        } else if (++run.short_retries <= kMaxEintrRetries) {
          // Mid-file partial transfer: re-aim the iovecs past the bytes we
          // have and resubmit the remainder, exactly like the sync
          // backend's ReadRun loop.
          run.got += static_cast<size_t>(cqe.res);
          RebuildIov(reqs, page_size, &run, &iov[run.first]);
          pending.push_back(r);
        } else {
          run.got += static_cast<size_t>(cqe.res);
          FinishRun(reqs, page_size, run, run.got,
                    Status::IOError("io_uring read: persistent short read"),
                    &completed_pages, done);
          finalized[r] = 1;
        }
        ++head;
        __atomic_store_n(ring->cq_head, head, __ATOMIC_RELEASE);
      }
    }
  }

 private:
  static void PushSqe(Ring* ring, int fd, const Run& run, const iovec* iov,
                      uint64_t offset, size_t run_index) {
    const unsigned tail = *ring->sq_tail;  // single producer: plain read ok
    const unsigned idx = tail & *ring->sq_mask;
    io_uring_sqe* s = &ring->sqes[idx];
    std::memset(s, 0, sizeof(*s));
    s->opcode = IORING_OP_READV;
    s->fd = fd;
    s->addr = reinterpret_cast<uint64_t>(iov);
    s->len = run.nvec;
    s->off = offset;
    s->user_data = run_index;
    ring->sq_array[idx] = idx;
    __atomic_store_n(ring->sq_tail, tail + 1, __ATOMIC_RELEASE);
  }

  // Re-aims a run's iovecs past the `run->got` bytes already landed,
  // compacting the remainder into the front of the run's iov slots.
  static void RebuildIov(PageIoRequest* reqs, uint32_t page_size, Run* run,
                         iovec* iov) {
    size_t skip = run->got;
    unsigned nv = 0;
    for (size_t k = 0; k < run->npages; ++k) {
      if (skip >= page_size) {
        skip -= page_size;
        continue;
      }
      iov[nv].iov_base = reqs[run->first + k].buf + skip;
      iov[nv].iov_len = page_size - skip;
      skip = 0;
      ++nv;
    }
    run->nvec = nv;
  }

  // Submits `to_submit` SQEs (no wait). Retries EINTR/EAGAIN up to
  // kMaxEintrRetries; returns false on a hard failure or when the cap is
  // exceeded (errno preserved). `*consumed` is the count the kernel
  // actually took — those SQEs are in flight even when this returns false.
  static bool Submit(Ring* ring, unsigned to_submit, unsigned* consumed) {
    *consumed = 0;
    int transient = 0;
    while (to_submit > 0) {
      const int fault = internal::ConsumeInjectedFault();
      internal::CountReadSyscall();
      int r;
      if (fault != 0) {
        errno = fault;
        r = -1;
      } else {
        r = SysIoUringEnter(ring->fd, to_submit, 0, 0);
      }
      if (r < 0) {
        if ((errno == EINTR || errno == EAGAIN) &&
            ++transient <= kMaxEintrRetries) {
          continue;
        }
        return false;
      }
      to_submit -= static_cast<unsigned>(r);
      *consumed += static_cast<unsigned>(r);
    }
    return true;
  }

  // Blocks until at least one completion is reapable. Retries EINTR/EAGAIN
  // up to kMaxEintrRetries, then fails (errno preserved).
  static bool WaitForCompletion(Ring* ring) {
    int transient = 0;
    for (;;) {
      const unsigned head = __atomic_load_n(ring->cq_head, __ATOMIC_ACQUIRE);
      const unsigned tail = __atomic_load_n(ring->cq_tail, __ATOMIC_ACQUIRE);
      if (head != tail) return true;
      const int fault = internal::ConsumeInjectedFault();
      internal::CountReadSyscall();
      int r;
      if (fault != 0) {
        errno = fault;
        r = -1;
      } else {
        r = SysIoUringEnter(ring->fd, 0, 1, IORING_ENTER_GETEVENTS);
      }
      if (r < 0) {
        if (errno != EINTR && errno != EAGAIN) return false;
        if (++transient > kMaxEintrRetries) return false;
      }
    }
  }

  // Hard-failure teardown. Two hazards if we just returned: (a) the kernel
  // still owns up to `*kernel_inflight` READV SQEs aimed at the caller's
  // buffers — returning lets the caller free them and the async completion
  // scribbles freed heap; (b) SQEs pushed onto the SQ ring but never
  // consumed by the kernel would be submitted by the NEXT batch on this
  // thread, pointing at this batch's dead iovecs. So: rewind our tail to
  // the kernel's head (discarding unconsumed SQEs), then reap until
  // nothing is in flight — completions drained here are finalized with
  // their real results — and only then fail whatever never completed. If
  // the drain itself cannot finish, tear the ring down so nothing stale
  // can ever reach a later batch.
  static void AbortBatch(Ring* ring, PageIoRequest* reqs, uint32_t page_size,
                         std::vector<Run>* runs, std::vector<char>* finalized,
                         size_t* kernel_inflight, size_t* completed_pages,
                         const PageIoDoneFn& done, const std::string& msg) {
    const unsigned kernel_head =
        __atomic_load_n(ring->sq_head, __ATOMIC_ACQUIRE);
    __atomic_store_n(ring->sq_tail, kernel_head, __ATOMIC_RELEASE);
    if (!DrainInflight(ring, reqs, page_size, runs, finalized,
                       kernel_inflight, completed_pages, done)) {
      ring->Teardown();  // next batch on this thread re-inits from scratch
    }
    FailUnfinished(reqs, *runs, finalized, completed_pages, done, msg);
  }

  // Reaps until every kernel-held SQE has completed, finalizing each run
  // with the result its completion carried (no resubmission — the batch is
  // aborting). Deliberately bypasses the fault hook: this is the cleanup
  // path, and bailing out early would hand the kernel freed buffers.
  // Returns false only if io_uring_enter fails hard or the retry cap is
  // exhausted with SQEs still in flight.
  static bool DrainInflight(Ring* ring, PageIoRequest* reqs,
                            uint32_t page_size, std::vector<Run>* runs,
                            std::vector<char>* finalized,
                            size_t* kernel_inflight, size_t* completed_pages,
                            const PageIoDoneFn& done) {
    int transient = 0;
    while (*kernel_inflight > 0) {
      unsigned head = __atomic_load_n(ring->cq_head, __ATOMIC_ACQUIRE);
      const unsigned tail = __atomic_load_n(ring->cq_tail, __ATOMIC_ACQUIRE);
      while (head != tail && *kernel_inflight > 0) {
        const io_uring_cqe& cqe = ring->cqes[head & *ring->cq_mask];
        const size_t r = static_cast<size_t>(cqe.user_data);
        Run& run = (*runs)[r];
        --*kernel_inflight;
        if (cqe.res >= 0) {
          run.got += static_cast<size_t>(cqe.res);
          FinishRun(reqs, page_size, run, run.got, Status::OK(),
                    completed_pages, done);
        } else {
          FinishRun(reqs, page_size, run, run.got,
                    Status::IOError(std::string("io_uring read: ") +
                                    std::strerror(-cqe.res)),
                    completed_pages, done);
        }
        (*finalized)[r] = 1;
        ++head;
        __atomic_store_n(ring->cq_head, head, __ATOMIC_RELEASE);
      }
      if (*kernel_inflight == 0) break;
      internal::CountReadSyscall();
      const int r =
          SysIoUringEnter(ring->fd, 0, 1, IORING_ENTER_GETEVENTS);
      if (r < 0) {
        if (errno != EINTR && errno != EAGAIN) return false;
        if (++transient > kMaxEintrRetries) return false;
      }
    }
    return true;
  }

  // Finalizes every page of one run from its completed byte count: pages
  // fully covered are OK, the rest surface a short-read error — a failed
  // run never poisons pages outside it.
  static void FinishRun(PageIoRequest* reqs, uint32_t page_size,
                        const Run& run, size_t got, const Status& st,
                        size_t* completed_pages, const PageIoDoneFn& done) {
    for (size_t k = 0; k < run.npages; ++k) {
      PageIoRequest& q = reqs[run.first + k];
      if (!st.ok()) {
        q.status = st;
      } else if ((k + 1) * static_cast<size_t>(page_size) <= got) {
        q.status = Status::OK();
      } else {
        q.status = Status::IOError(
            "short read at lpn " + std::to_string(q.lpn) + " (got " +
            std::to_string(got) + " bytes of a " +
            std::to_string(run.npages) + "-page run)");
      }
      ++*completed_pages;
      if (done) done(run.first + k);
    }
  }

  // After a hard submission failure every run not yet finalized gets `msg`,
  // so the caller always sees exactly one final status per page.
  static void FailUnfinished(PageIoRequest* reqs, const std::vector<Run>& runs,
                             std::vector<char>* finalized,
                             size_t* completed_pages, const PageIoDoneFn& done,
                             const std::string& msg) {
    for (size_t r = 0; r < runs.size(); ++r) {
      if ((*finalized)[r]) continue;
      (*finalized)[r] = 1;
      for (size_t k = 0; k < runs[r].npages; ++k) {
        reqs[runs[r].first + k].status = Status::IOError(msg);
        ++*completed_pages;
        if (done) done(runs[r].first + k);
      }
    }
  }

  // Ring-less degradation: plain sequential preads with per-page round
  // trips (mirrors the sync backend's cost model).
  static void FallbackSequential(int fd, uint32_t page_size,
                                 PageIoRequest* reqs, size_t n,
                                 uint32_t simulated_latency_us,
                                 const PageIoDoneFn& done) {
    for (size_t i = 0; i < n; ++i) {
      ChargeSimulatedLatency(simulated_latency_us);
      size_t got = 0;
      Status st = PreadFull(fd, reqs[i].buf, page_size,
                            static_cast<off_t>(reqs[i].lpn) * page_size,
                            &got);
      if (st.ok() && got < page_size) {
        st = Status::IOError("short read at lpn " +
                             std::to_string(reqs[i].lpn));
      }
      reqs[i].status = st;
      if (done) done(i);
    }
  }
};

}  // namespace

namespace internal {

IoBackend* UringBackendOrNull() {
  static IoBackend* backend = []() -> IoBackend* {
    // Runtime probe: a throwaway ring proves io_uring_setup + mmap work
    // here (seccomp policies and pre-5.1 kernels fail cleanly).
    Ring probe;
    if (!probe.Init(4)) return nullptr;
    return new UringIoBackend();
  }();
  return backend;
}

}  // namespace internal

}  // namespace payg

#else  // !PAYG_HAS_IO_URING

namespace payg {
namespace internal {
IoBackend* UringBackendOrNull() { return nullptr; }
}  // namespace internal
}  // namespace payg

#endif
