#ifndef PAYG_STORAGE_IO_STATS_H_
#define PAYG_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace payg {

// Counters for physical page traffic. Shared by all page files of one
// StorageManager; benchmarks read these to report load behaviour. The same
// traffic is also mirrored into the process-wide MetricsRegistry (names
// "storage.read.*" / "storage.write.*") by PageFile, together with the
// read/write latency histograms this struct has no room for — this struct
// stays as the per-store view.
struct IoStats {
  std::atomic<uint64_t> pages_read{0};
  std::atomic<uint64_t> pages_written{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};

  void Reset() {
    // Relaxed on purpose: these are statistics, and the seq-cst stores of
    // atomic operator= would fence every reset for no benefit.
    pages_read.store(0, std::memory_order_relaxed);
    pages_written.store(0, std::memory_order_relaxed);
    bytes_read.store(0, std::memory_order_relaxed);
    bytes_written.store(0, std::memory_order_relaxed);
  }
};

}  // namespace payg

#endif  // PAYG_STORAGE_IO_STATS_H_
