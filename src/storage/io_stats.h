#ifndef PAYG_STORAGE_IO_STATS_H_
#define PAYG_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>

namespace payg {

// Counters for physical page traffic. Shared by all page files of one
// StorageManager; benchmarks read these to report load behaviour.
struct IoStats {
  std::atomic<uint64_t> pages_read{0};
  std::atomic<uint64_t> pages_written{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};

  void Reset() {
    pages_read = 0;
    pages_written = 0;
    bytes_read = 0;
    bytes_written = 0;
  }
};

}  // namespace payg

#endif  // PAYG_STORAGE_IO_STATS_H_
