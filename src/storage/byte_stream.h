#ifndef PAYG_STORAGE_BYTE_STREAM_H_
#define PAYG_STORAGE_BYTE_STREAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page_file.h"

namespace payg {

// Streams an arbitrary byte sequence into a page chain (used to persist
// fully resident structures, which are always loaded and unloaded as a
// whole). Values are written with little-endian fixed-width encodings.
class ChainByteWriter {
 public:
  explicit ChainByteWriter(PageFile* file, PageType type = PageType::kMeta)
      : file_(file), page_(file->page_size()) {
    page_.set_type(type);
  }

  void PutU8(uint8_t v) { PutBytes(&v, 1); }
  void PutU32(uint32_t v) { PutBytes(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutBytes(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutBytes(&v, sizeof(v)); }
  void PutDouble(double v) { PutBytes(&v, sizeof(v)); }
  void PutString(std::string_view s) {
    PutU64(s.size());
    PutBytes(s.data(), s.size());
  }
  void PutBytes(const void* data, size_t n);

  // Flushes the trailing partial page. Must be called exactly once.
  Status Finish();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  PageFile* file_;
  Page page_;
  uint32_t fill_ = 0;
  uint64_t bytes_written_ = 0;
  Status deferred_;  // first write error, surfaced by Finish()
};

// Sequentially reads back a byte stream written by ChainByteWriter, pulling
// pages one at a time (each read pays the configured simulated latency —
// this is what makes a full column load cost proportional to its size).
class ChainByteReader {
 public:
  explicit ChainByteReader(const PageFile* file)
      : file_(file), page_(file->page_size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Status GetBytes(void* out, size_t n);

 private:
  const PageFile* file_;
  Page page_;
  LogicalPageNo next_page_ = 0;
  uint32_t pos_ = 0;
  uint32_t avail_ = 0;
};

}  // namespace payg

#endif  // PAYG_STORAGE_BYTE_STREAM_H_
