#ifndef PAYG_STORAGE_STORAGE_OPTIONS_H_
#define PAYG_STORAGE_STORAGE_OPTIONS_H_

#include <cstdint>
#include <string>

namespace payg {

// Tunables for the page persistence layer.
struct StorageOptions {
  // Page size for data-vector and inverted-index chains. The paper stores an
  // integral number of 64-value chunks per page; 256 KiB is a good default
  // at reproduction scale.
  uint32_t page_size = 256 * 1024;

  // Dictionary chains use larger pages (the paper uses 1 MiB).
  uint32_t dict_page_size = 1024 * 1024;

  // Injected latency per physical page read, in microseconds. The paper
  // measures real cold reads from enterprise storage; inside a container the
  // OS page cache would make re-reads free, so benchmarks model the I/O cost
  // explicitly. Zero disables the simulation (unit tests).
  uint32_t simulated_read_latency_us = 0;

  // Verify page checksums on every read. Disabled only by fault-injection
  // tests that want to observe corruption handling separately.
  bool verify_checksums = true;

  // §8 (Storage Class Memory): when true, chains holding *non-critical*
  // structures — the dictionary helper indexes, the inverted index, the
  // data-vector min/max summary; everything rebuildable from critical data —
  // are read with `scm_read_latency_us` instead of the disk latency,
  // modeling their placement on byte-addressable SCM ("read and write
  // latencies only within an order of magnitude of DRAM").
  bool scm_for_noncritical = false;
  uint32_t scm_read_latency_us = 2;
};

}  // namespace payg

#endif  // PAYG_STORAGE_STORAGE_OPTIONS_H_
