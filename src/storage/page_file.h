#ifndef PAYG_STORAGE_PAGE_FILE_H_
#define PAYG_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/io_backend.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/storage_options.h"

namespace payg {

class ExecContext;

// A chain of fixed-size pages backed by one file. The logical page number of
// a page is its index in the file (offset = lpn * page_size), which makes
// "find the page holding chunk k" a pure arithmetic operation — the property
// the paper's iterators rely on.
//
// Thread-safe for concurrent reads and appends (pread/pwrite on distinct
// offsets; the append cursor is atomic).
class PageFile {
 public:
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  // Creates a new (empty) page file, truncating any existing file at `path`.
  static Result<std::unique_ptr<PageFile>> Create(const std::string& path,
                                                  uint32_t page_size,
                                                  const StorageOptions& opts,
                                                  IoStats* stats);

  // Opens an existing page file; the on-disk size must be a multiple of
  // `page_size`.
  static Result<std::unique_ptr<PageFile>> Open(const std::string& path,
                                                uint32_t page_size,
                                                const StorageOptions& opts,
                                                IoStats* stats);

  // Appends `page` to the end of the chain and returns its logical page
  // number. Stamps the header's logical_page_no and checksum.
  Result<LogicalPageNo> AppendPage(Page* page);

  // Writes `page` at an existing logical page number (rebuild paths).
  Status WritePage(LogicalPageNo lpn, Page* page);

  // Reads the page at `lpn` into `page` (whose size must match), verifying
  // magic and checksum, and applying the configured simulated read latency.
  // When a query's ExecContext is given, the read is attributed to it in
  // addition to the store-wide IoStats.
  Status ReadPage(LogicalPageNo lpn, Page* page,
                  ExecContext* ctx = nullptr) const;

  // Batched read: the n pages named by `lpns` are read through the current
  // IoBackend as one submission (contiguous runs become vectored reads) and
  // each page's final status lands in `statuses[i]`. `done(i)` — when given
  // — fires on the calling thread as page i completes, after verification,
  // with statuses[i] final; this is the completion-driven publish hook the
  // page cache uses, so a page becomes visible when its bytes land rather
  // than when the slowest page of the batch does. Blocking: by return every
  // page has exactly one final status and one done() call. A bad page
  // (out of range, short read, corruption) fails only itself.
  void ReadPages(const LogicalPageNo* lpns, Page* const* pages,
                 Status* statuses, size_t n, ExecContext* ctx = nullptr,
                 const PageIoDoneFn& done = nullptr) const;

  // Number of pages currently in the chain.
  uint64_t page_count() const { return page_count_; }

  uint32_t page_size() const { return page_size_; }
  const std::string& path() const { return path_; }

  // Flushes file contents to stable storage.
  Status Sync();

 private:
  PageFile(std::string path, int fd, uint32_t page_size, uint64_t page_count,
           const StorageOptions& opts, IoStats* stats);

  // Shared verification + accounting tail of both read paths: magic, page
  // number, checksum (counting "io.checksum_fail"), then the read counters.
  Status VerifyLoadedPage(LogicalPageNo lpn, Page* page,
                          ExecContext* ctx) const;

  std::string path_;
  int fd_;
  uint32_t page_size_;
  std::atomic<uint64_t> page_count_;
  StorageOptions opts_;
  IoStats* stats_;  // not owned; may be null

  // Batched reads in flight. The destructor spins until this drains so a
  // ReadPages still finalizing pages never touches a dead PageFile — owners
  // destroy the cache (which drains its own waiters) before the file, and
  // this closes the last window in between.
  mutable std::atomic<uint64_t> inflight_batches_{0};

  // Process-wide mirrors of the IoStats bumps plus the physical-IO latency
  // histograms ("storage.read.latency_us" / "storage.write.latency_us").
  // Resolved once here so the read path pays no registry lookup.
  obs::Counter* m_pages_read_;
  obs::Counter* m_bytes_read_;
  obs::Counter* m_pages_written_;
  obs::Counter* m_bytes_written_;
  obs::Histogram* m_read_latency_us_;
  obs::Histogram* m_write_latency_us_;

  // Batched-I/O observability ("io.*"): submissions, batch size
  // distribution, pages currently in flight, per-page completion latency
  // (submit -> verified), checksum failures.
  obs::Counter* m_io_batches_;
  obs::Histogram* m_io_batch_pages_;
  obs::Gauge* m_io_inflight_;
  obs::Histogram* m_io_completion_latency_us_;
  obs::Counter* m_io_checksum_fail_;
};

}  // namespace payg

#endif  // PAYG_STORAGE_PAGE_FILE_H_
